"""Encoding and decoding of 3-D Morton (z-order) codes.

A Morton code interleaves the bits of the three coordinates so that
``code = z_k y_k x_k ... z_1 y_1 x_1 z_0 y_0 x_0``.  Nearby points in 3-D
space map to nearby positions on the 1-D curve, which is why the JHTDB
uses Morton order both as the clustered-index key of its atom tables and
as the sharding key across database nodes.

Scalar routines use the classic parallel-prefix "magic number" bit tricks;
array routines are vectorised with numpy ``uint64`` arithmetic and accept
arbitrary array shapes.
"""

from __future__ import annotations

import numpy as np

#: Number of bits supported per coordinate.  21 bits per axis packs into a
#: 63-bit code, which fits both Python ints and ``uint64`` arrays and
#: covers grids up to ``2**21`` (far beyond the 1024^3 production grids).
MAX_COORD_BITS = 21

_MAX_COORD = (1 << MAX_COORD_BITS) - 1

# Masks for the parallel-prefix spread of a 21-bit integer to every third
# bit of a 63-bit integer (and its inverse compaction).
_SPREAD_MASKS = (
    0x1FFFFF,  # 21 ones
    0x1F00000000FFFF,
    0x1F0000FF0000FF,
    0x100F00F00F00F00F,
    0x10C30C30C30C30C3,
    0x1249249249249249,
)
_SPREAD_SHIFTS = (32, 16, 8, 4, 2)


def _spread(value: int) -> int:
    """Spread the low 21 bits of ``value`` to every third bit."""
    word = value & _SPREAD_MASKS[0]
    for shift, mask in zip(_SPREAD_SHIFTS, _SPREAD_MASKS[1:]):
        word = (word | (word << shift)) & mask
    return word


def _compact(word: int) -> int:
    """Inverse of :func:`_spread`: gather every third bit into 21 bits."""
    word &= _SPREAD_MASKS[-1]
    for shift, mask in zip(reversed(_SPREAD_SHIFTS), reversed(_SPREAD_MASKS[:-1])):
        word = (word | (word >> shift)) & mask
    return word


def encode(x: int, y: int, z: int) -> int:
    """Return the Morton code of grid point ``(x, y, z)``.

    The x bit lands in the least-significant interleaved position,
    matching the JHTDB convention where x varies fastest.

    Raises:
        ValueError: if any coordinate is negative or needs more than
            :data:`MAX_COORD_BITS` bits.
    """
    if not (0 <= x <= _MAX_COORD and 0 <= y <= _MAX_COORD and 0 <= z <= _MAX_COORD):
        raise ValueError(
            f"coordinates ({x}, {y}, {z}) outside [0, {_MAX_COORD}]"
        )
    return _spread(x) | (_spread(y) << 1) | (_spread(z) << 2)


def decode(code: int) -> tuple[int, int, int]:
    """Return the ``(x, y, z)`` grid point of a Morton ``code``.

    Raises:
        ValueError: if ``code`` is negative or wider than 63 bits.
    """
    if not 0 <= code < (1 << (3 * MAX_COORD_BITS)):
        raise ValueError(f"Morton code {code} outside [0, 2**63)")
    return _compact(code), _compact(code >> 1), _compact(code >> 2)


# ---------------------------------------------------------------------------
# Vectorised variants


def _spread_array(values: np.ndarray) -> np.ndarray:
    word = values.astype(np.uint64) & np.uint64(_SPREAD_MASKS[0])
    for shift, mask in zip(_SPREAD_SHIFTS, _SPREAD_MASKS[1:]):
        word = (word | (word << np.uint64(shift))) & np.uint64(mask)
    return word


def _compact_array(word: np.ndarray) -> np.ndarray:
    word = word & np.uint64(_SPREAD_MASKS[-1])
    for shift, mask in zip(reversed(_SPREAD_SHIFTS), reversed(_SPREAD_MASKS[:-1])):
        word = (word | (word >> np.uint64(shift))) & np.uint64(mask)
    return word


def encode_array(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Vectorised :func:`encode` over integer arrays of any common shape.

    Returns a ``uint64`` array of Morton codes.
    """
    x, y, z = np.asarray(x), np.asarray(y), np.asarray(z)
    for name, arr in (("x", x), ("y", y), ("z", z)):
        if arr.size and (arr.min() < 0 or arr.max() > _MAX_COORD):
            raise ValueError(f"{name} coordinates outside [0, {_MAX_COORD}]")
    return (
        _spread_array(x)
        | (_spread_array(y) << np.uint64(1))
        | (_spread_array(z) << np.uint64(2))
    )


def decode_array(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`decode`.  Returns ``(x, y, z)`` ``uint64`` arrays."""
    codes = np.asarray(codes, dtype=np.uint64)
    return (
        _compact_array(codes),
        _compact_array(codes >> np.uint64(1)),
        _compact_array(codes >> np.uint64(2)),
    )
