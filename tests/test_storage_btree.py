"""Tests for the B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get((1,)) is None
        assert (1,) not in tree
        assert list(tree.items()) == []

    def test_insert_and_get(self):
        tree = BPlusTree()
        assert tree.insert((1,), "a") is True
        assert tree.get((1,)) == "a"
        assert (1,) in tree

    def test_overwrite(self):
        tree = BPlusTree()
        tree.insert((1,), "a")
        assert tree.insert((1,), "b") is False
        assert tree.get((1,)) == "b"
        assert len(tree) == 1

    def test_insert_no_replace(self):
        tree = BPlusTree()
        tree.insert((1,), "a")
        tree.insert((1,), "b", replace=False)
        assert tree.get((1,)) == "a"

    def test_delete(self):
        tree = BPlusTree()
        tree.insert((1,), "a")
        assert tree.delete((1,)) is True
        assert tree.get((1,)) is None
        assert tree.delete((1,)) is False
        assert len(tree) == 0

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_compound_keys(self):
        tree = BPlusTree()
        tree.insert((1, 100), "a")
        tree.insert((1, 50), "b")
        tree.insert((2, 1), "c")
        assert [k for k, _ in tree.items()] == [(1, 50), (1, 100), (2, 1)]


class TestScaling:
    def test_many_inserts_stay_sorted(self):
        tree = BPlusTree(order=8)
        keys = list(range(1000))
        random.Random(3).shuffle(keys)
        for k in keys:
            tree.insert((k,), k * 2)
        assert len(tree) == 1000
        assert [k for k, _ in tree.items()] == [(k,) for k in range(1000)]
        assert tree.depth() > 1
        tree.check_invariants()

    def test_scan_range(self):
        tree = BPlusTree(order=8)
        for k in range(100):
            tree.insert((k,), k)
        got = [k[0] for k, _ in tree.scan((10,), (20,))]
        assert got == list(range(10, 20))

    def test_scan_inclusive_hi(self):
        tree = BPlusTree()
        for k in range(10):
            tree.insert((k,), k)
        got = [k[0] for k, _ in tree.scan((3,), (6,), include_hi=True)]
        assert got == [3, 4, 5, 6]

    def test_scan_unbounded(self):
        tree = BPlusTree(order=8)
        for k in range(50):
            tree.insert((k,), k)
        assert len(list(tree.scan())) == 50
        assert [k[0] for k, _ in tree.scan(lo=(45,))] == [45, 46, 47, 48, 49]
        assert [k[0] for k, _ in tree.scan(hi=(5,))] == [0, 1, 2, 3, 4]

    def test_scan_prefix_bound(self):
        tree = BPlusTree()
        for t in range(3):
            for z in range(5):
                tree.insert((t, z), None)
        got = [k for k, _ in tree.scan((1,), (2,))]
        assert got == [(1, z) for z in range(5)]

    def test_delete_interleaved_with_split(self):
        tree = BPlusTree(order=4)
        for k in range(200):
            tree.insert((k,), k)
        for k in range(0, 200, 2):
            assert tree.delete((k,))
        assert len(tree) == 100
        assert [k[0] for k, _ in tree.items()] == list(range(1, 200, 2))
        tree.check_invariants()


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 500), max_size=300))
    def test_matches_dict_semantics(self, ops):
        tree = BPlusTree(order=6)
        model = {}
        for op in ops:
            key = (op % 100,)
            if op % 3 == 0 and key in model:
                tree.delete(key)
                del model[key]
            else:
                tree.insert(key, op)
                model[key] = op
        assert len(tree) == len(model)
        assert dict(tree.items()) == model
        tree.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 1000), max_size=200), st.integers(0, 1000), st.integers(0, 1000))
    def test_range_scan_matches_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = BPlusTree(order=5)
        for k in keys:
            tree.insert((k,), k)
        got = [k[0] for k, _ in tree.scan((lo,), (hi,))]
        assert got == sorted(k for k in keys if lo <= k < hi)
