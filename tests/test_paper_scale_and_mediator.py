"""Tests for paper-scale spec scaling and mediator field endpoints."""

import numpy as np
import pytest

from repro.costmodel import Category, paper_cluster, paper_scale_spec
from repro.grid import Box
from tests.test_core_threshold import ground_truth_norm


class TestPaperScaleSpec:
    def test_throughputs_scaled_by_volume_ratio(self):
        base = paper_cluster()
        scaled = paper_scale_spec(64, base)
        factor = (1024 / 64) ** 3
        assert scaled.hdd.stream_mib_s == pytest.approx(
            base.hdd.stream_mib_s / factor
        )
        assert scaled.ssd.read_mib_s == pytest.approx(
            base.ssd.read_mib_s / factor
        )
        assert scaled.wan.bandwidth_mib_s == pytest.approx(
            base.wan.bandwidth_mib_s / factor
        )
        assert scaled.cpu.units_per_s == pytest.approx(
            base.cpu.units_per_s / factor
        )

    def test_latencies_and_seeks_unscaled(self):
        base = paper_cluster()
        scaled = paper_scale_spec(64, base)
        assert scaled.hdd.seek_s == base.hdd.seek_s
        assert scaled.wan.latency_s == base.wan.latency_s
        assert scaled.ssd.latency_s == base.ssd.latency_s

    def test_interconnect_unscaled(self):
        base = paper_cluster()
        scaled = paper_scale_spec(64, base)
        assert scaled.interconnect.bandwidth_mib_s == (
            base.interconnect.bandwidth_mib_s
        )

    def test_full_size_is_identity(self):
        base = paper_cluster()
        same = paper_scale_spec(1024, base)
        assert same.hdd.stream_mib_s == base.hdd.stream_mib_s

    def test_validation(self):
        with pytest.raises(ValueError):
            paper_scale_spec(0)
        with pytest.raises(ValueError):
            paper_scale_spec(2048)

    def test_read_time_is_scale_invariant(self):
        """Reading a node's share charges the same seconds at any scale."""
        base = paper_cluster()
        for side in (64, 128, 256):
            spec = paper_scale_spec(side, base)
            share_bytes = (side**3 // 4) * 12  # velocity share on 4 nodes
            seconds = spec.hdd.read_time(share_bytes, seeks=0)
            full = base.hdd.read_time((1024**3 // 4) * 12, seeks=0)
            assert seconds == pytest.approx(full, rel=1e-9)


class TestMediatorFieldEndpoints:
    def test_get_field_matches_ground_truth(self, small_mhd, mhd_cluster):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        box = Box((4, 4, 4), (24, 20, 28))
        array, ledger = mhd_cluster.get_field("mhd", "vorticity", 0, box)
        assert array.shape == box.shape
        assert np.allclose(array, norm[4:24, 4:20, 4:28], atol=1e-5)
        assert ledger[Category.MEDIATOR_USER] > 0

    def test_get_field_charges_compute_for_derived(self, mhd_cluster):
        box = Box((0, 0, 0), (16, 16, 16))
        _, ledger = mhd_cluster.get_field("mhd", "vorticity", 0, box)
        assert ledger[Category.COMPUTE] > 0

    def test_get_gradient_shape_and_cost(self, mhd_cluster):
        box = Box((0, 0, 0), (16, 16, 16))
        tensor, ledger = mhd_cluster.get_gradient("mhd", "velocity", 0, box)
        assert tensor.shape == (16, 16, 16, 3, 3)
        # 9 components cross the wire vs 1 for the norm: 9x the payload
        # (per-request latency excluded).
        _, norm_ledger = mhd_cluster.get_field("mhd", "vorticity", 0, box)
        latency = mhd_cluster.spec.wan.latency_s
        gradient_payload = ledger[Category.MEDIATOR_USER] - latency
        norm_payload = norm_ledger[Category.MEDIATOR_USER] - latency
        assert gradient_payload == pytest.approx(9 * norm_payload, rel=1e-6)

    def test_gradient_spans_node_boundaries(self, small_mhd, mhd_cluster):
        from repro.fields import gradient_tensor_periodic

        box = Box((8, 8, 8), (24, 24, 24))  # crosses all octants
        tensor, _ = mhd_cluster.get_gradient("mhd", "velocity", 0, box)
        velocity = small_mhd.field_array("velocity", 0).astype(np.float64)
        expected = gradient_tensor_periodic(velocity, small_mhd.spec.spacing, 4)
        assert np.allclose(tensor, expected[8:24, 8:24, 8:24], atol=1e-4)
