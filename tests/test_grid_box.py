"""Tests for Box geometry and periodic wrapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import Box


class TestBoxBasics:
    def test_shape_and_volume(self):
        box = Box((1, 2, 3), (4, 6, 9))
        assert box.shape == (3, 4, 6)
        assert box.volume == 72

    def test_cube_constructor(self):
        assert Box.cube(8) == Box((0, 0, 0), (8, 8, 8))

    def test_from_corners_round_trips(self):
        box = Box.from_corners((1, 2, 3, 4, 5, 6))
        assert box.as_corners() == (1, 2, 3, 4, 5, 6)

    def test_from_corners_requires_six(self):
        with pytest.raises(ValueError):
            Box.from_corners((1, 2, 3))

    def test_invalid_corners_rejected(self):
        with pytest.raises(ValueError):
            Box((0, 0, 0), (1, -1, 1))

    def test_empty_box(self):
        assert Box((2, 2, 2), (2, 5, 5)).is_empty

    def test_contains_point_half_open(self):
        box = Box((0, 0, 0), (4, 4, 4))
        assert box.contains_point((0, 0, 0))
        assert box.contains_point((3, 3, 3))
        assert not box.contains_point((4, 0, 0))

    def test_contains_box(self):
        outer = Box((0, 0, 0), (10, 10, 10))
        assert outer.contains_box(Box((2, 2, 2), (5, 5, 5)))
        assert outer.contains_box(outer)
        assert not outer.contains_box(Box((2, 2, 2), (5, 5, 11)))

    def test_empty_box_contained_everywhere(self):
        assert Box((0, 0, 0), (1, 1, 1)).contains_box(Box((9, 9, 9), (9, 9, 9)))


class TestBoxOperations:
    def test_intersection(self):
        a = Box((0, 0, 0), (5, 5, 5))
        b = Box((3, 3, 3), (8, 8, 8))
        assert a.intersection(b) == Box((3, 3, 3), (5, 5, 5))

    def test_disjoint_intersection_is_none(self):
        a = Box((0, 0, 0), (2, 2, 2))
        assert a.intersection(Box((2, 0, 0), (4, 2, 2))) is None

    def test_expand(self):
        box = Box((2, 2, 2), (4, 4, 4)).expand(3)
        assert box == Box((-1, -1, -1), (7, 7, 7))

    def test_expand_rejects_negative(self):
        with pytest.raises(ValueError):
            Box.cube(4).expand(-1)

    def test_translate(self):
        assert Box.cube(2).translate((1, 2, 3)) == Box((1, 2, 3), (3, 4, 5))

    def test_clip_to_domain(self):
        box = Box((-2, 0, 6), (3, 4, 10))
        assert box.clip_to_domain(8) == Box((0, 0, 6), (3, 4, 8))

    def test_iter_points_order_and_count(self):
        box = Box((0, 0, 0), (2, 2, 1))
        assert list(box.iter_points()) == [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]


class TestPeriodicWrap:
    def test_interior_box_is_single_piece(self):
        box = Box((1, 1, 1), (3, 3, 3))
        pieces = list(box.wrap_periodic(8))
        assert pieces == [(box, (0, 0, 0))]

    def test_wrap_below_zero(self):
        box = Box((-2, 0, 0), (2, 1, 1))
        pieces = dict()
        for piece, offset in box.wrap_periodic(8):
            pieces[offset] = piece
        assert pieces[(0, 0, 0)] == Box((6, 0, 0), (8, 1, 1))
        assert pieces[(2, 0, 0)] == Box((0, 0, 0), (2, 1, 1))

    def test_wrap_past_side(self):
        box = Box((6, 6, 6), (10, 10, 10))
        pieces = list(box.wrap_periodic(8))
        assert len(pieces) == 8
        total = sum(piece.volume for piece, _ in pieces)
        assert total == box.volume

    def test_wrap_rejects_oversized_box(self):
        with pytest.raises(ValueError):
            list(Box((0, 0, 0), (9, 1, 1)).wrap_periodic(8))

    @settings(max_examples=50, deadline=None)
    @given(
        st.tuples(*[st.integers(-8, 8)] * 3),
        st.tuples(*[st.integers(1, 8)] * 3),
    )
    def test_wrap_reconstructs_region(self, lo, shape):
        """Stitching wrapped pieces reproduces the periodic extension."""
        side = 8
        domain = np.arange(side**3).reshape(side, side, side)  # [x, y, z]
        box = Box(lo, tuple(l + s for l, s in zip(lo, shape)))
        local = np.full(box.shape, -1)
        for piece, offset in box.wrap_periodic(side):
            sl_local = tuple(
                slice(o, o + n) for o, n in zip(offset, piece.shape)
            )
            sl_domain = tuple(
                slice(a, b) for a, b in zip(piece.lo, piece.hi)
            )
            local[sl_local] = domain[sl_domain]
        # Compare against direct periodic indexing.
        for idx in np.ndindex(*box.shape):
            gx, gy, gz = (
                (box.lo[0] + idx[0]) % side,
                (box.lo[1] + idx[1]) % side,
                (box.lo[2] + idx[2]) % side,
            )
            assert local[idx] == domain[gx, gy, gz]
