"""Tests for PDF and top-k queries."""

import numpy as np
import pytest

from repro.core import PdfQuery, TopKQuery
from repro.costmodel import Category
from tests.test_core_threshold import ground_truth_norm


class TestPdf:
    def test_counts_match_ground_truth(self, small_mhd, mhd_cluster):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        edges = tuple(np.linspace(0, norm.max() * 0.9, 10))
        result = mhd_cluster.pdf(PdfQuery("mhd", "vorticity", 0, edges))
        expected, _ = np.histogram(norm, bins=np.append(edges, np.inf))
        assert np.array_equal(result.counts, expected)
        assert result.total_points <= norm.size

    def test_total_points_counts_everything_above_first_edge(self, small_mhd, mhd_cluster):
        result = mhd_cluster.pdf(
            PdfQuery("mhd", "vorticity", 0, (0.0, 1.0, 2.0))
        )
        assert result.total_points == 32**3

    def test_pdf_of_raw_field(self, small_mhd, mhd_cluster):
        norm = ground_truth_norm(small_mhd, "magnetic", 1)
        edges = tuple(np.linspace(0, norm.max(), 8))
        result = mhd_cluster.pdf(PdfQuery("mhd", "magnetic", 1, edges))
        expected, _ = np.histogram(norm, bins=np.append(edges, np.inf))
        assert np.array_equal(result.counts, expected)

    def test_pdf_charges_io_and_compute(self, mhd_cluster):
        mhd_cluster.drop_page_caches()
        result = mhd_cluster.pdf(PdfQuery("mhd", "vorticity", 0, (0.0, 5.0)))
        assert result.ledger[Category.IO] > 0
        assert result.ledger[Category.COMPUTE] > 0

    def test_edge_validation(self):
        with pytest.raises(ValueError):
            PdfQuery("mhd", "vorticity", 0, (1.0,))
        with pytest.raises(ValueError):
            PdfQuery("mhd", "vorticity", 0, (2.0, 1.0))


class TestTopK:
    def test_topk_matches_ground_truth(self, small_mhd, mhd_cluster):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        k = 25
        result = mhd_cluster.topk(TopKQuery("mhd", "vorticity", 0, k))
        assert len(result) == k
        expected = np.sort(norm.ravel())[-k:][::-1]
        assert np.allclose(result.values, expected, atol=1e-5)
        # Values arrive in descending order, coordinates consistent.
        assert (np.diff(result.values) <= 1e-12).all()
        coords = result.coordinates()
        for (x, y, z), value in zip(coords.tolist(), result.values.tolist()):
            assert norm[x, y, z] == pytest.approx(value, abs=1e-5)

    def test_k_larger_than_domain(self, small_mhd, mhd_cluster):
        result = mhd_cluster.topk(TopKQuery("mhd", "magnetic", 0, 10))
        assert len(result) == 10

    def test_k_validation(self):
        with pytest.raises(ValueError):
            TopKQuery("mhd", "vorticity", 0, 0)

    def test_topk_served_from_threshold_cache(self, small_mhd, mhd_cluster):
        """A dominating cached entry answers top-k without raw I/O."""
        from repro.core import ThresholdQuery
        from repro.costmodel import Category

        norm = ground_truth_norm(small_mhd, "vorticity", 1)
        # Cache a low-threshold entry with plenty of points per node.
        low = float(np.quantile(norm, 0.9))
        mhd_cluster.threshold(ThresholdQuery("mhd", "vorticity", 1, low))
        mhd_cluster.drop_page_caches()
        k = 10
        result = mhd_cluster.topk(TopKQuery("mhd", "vorticity", 1, k))
        expected = np.sort(norm.ravel())[-k:][::-1]
        assert np.allclose(result.values, expected, atol=1e-5)
        assert result.ledger[Category.IO] == 0.0  # answered from SSD cache

    def test_topk_with_small_cache_entry_recomputes(self, small_mhd, mhd_cluster):
        """Entries with fewer than k points cannot answer top-k."""
        from repro.core import ThresholdQuery
        from repro.costmodel import Category

        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        high = float(np.quantile(norm, 0.9999))  # only a few points cached
        mhd_cluster.drop_cache_entries("mhd", "vorticity", 0)
        mhd_cluster.threshold(ThresholdQuery("mhd", "vorticity", 0, high))
        mhd_cluster.drop_page_caches()
        k = 100
        result = mhd_cluster.topk(TopKQuery("mhd", "vorticity", 0, k))
        expected = np.sort(norm.ravel())[-k:][::-1]
        assert np.allclose(result.values, expected, atol=1e-5)
        assert result.ledger[Category.IO] > 0.0  # needed the raw data

    def test_topk_equals_threshold_at_kth_value(self, small_mhd, mhd_cluster):
        """Top-k and thresholding at the k-th value agree (paper §1)."""
        from repro.core import ThresholdQuery

        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        k = 50
        kth = np.sort(norm.ravel())[-k]
        topk = mhd_cluster.topk(TopKQuery("mhd", "vorticity", 0, k))
        thresh = mhd_cluster.threshold(
            ThresholdQuery("mhd", "vorticity", 0, float(kth)), use_cache=False
        )
        assert set(topk.zindexes.tolist()) <= set(thresh.zindexes.tolist())
        assert len(thresh) >= k
