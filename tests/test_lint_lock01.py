"""LOCK01 (lock hygiene) checker tests."""

from repro.lint.checkers.lock01 import LockHygiene

from tests.lint_helpers import load, run_checker


def test_clean_fixture_passes():
    source = load("lock01_good.py", "repro.storage.fixture_good")
    assert run_checker(LockHygiene(), source) == []


def test_bad_fixture_reports_each_violation():
    source = load("lock01_bad.py", "repro.storage.fixture_bad")
    diags = run_checker(LockHygiene(), source)
    messages = "\n".join(d.message for d in diags)
    assert len(diags) == 3
    assert "self-deadlock" in messages
    assert "without it in public method racy()" in messages
    assert "lock-order cycle" in messages
    cycle = next(d for d in diags if "cycle" in d.message)
    assert "OppositeOrders._a_lock" in cycle.message
    assert "OppositeOrders._b_lock" in cycle.message


def test_private_helpers_may_mutate_without_lock():
    # lock01_good.Guarded._bump_already_locked mutates self._count with
    # no lock held; the leading-underscore convention exempts it.
    source = load("lock01_good.py", "repro.cluster.fixture_good")
    assert run_checker(LockHygiene(), source) == []


def test_edges_accumulate_across_files_only_within_one_run():
    # A fresh checker instance has an empty lock-order graph: the cycle
    # from the bad fixture must not leak into later runs.
    bad = load("lock01_bad.py", "repro.storage.fixture_bad")
    assert any(
        "cycle" in d.message for d in run_checker(LockHygiene(), bad)
    )
    good = load("lock01_good.py", "repro.storage.fixture_good")
    assert run_checker(LockHygiene(), good) == []
