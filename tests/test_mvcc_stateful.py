"""Model-based stateful testing of snapshot isolation.

Hypothesis drives random interleavings of transactions (begin, writes,
commit, abort) against both the engine and a reference model of
snapshot-isolation semantics:

* a transaction reads the committed state as of its snapshot plus its
  own writes;
* writing a key last written by a transaction that committed after the
  snapshot — or currently being written by another live transaction —
  raises a serialization conflict (first-updater-wins);
* abort restores everything.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.costmodel import Category
from repro.costmodel.devices import SsdSpec
from repro.storage import (
    Column,
    ColumnType,
    Database,
    DuplicateKeyError,
    SerializationConflictError,
    StorageDevice,
    TableSchema,
)

KEYS = list(range(6))


class _ModelTxn:
    def __init__(self, txn, snapshot: dict[int, int], ts: int) -> None:
        self.txn = txn
        self.snapshot = dict(snapshot)  # committed state at begin
        self.begin_ts = ts
        self.writes: dict[int, int | None] = {}  # key -> value or None=deleted

    def visible(self, key: int):
        if key in self.writes:
            return self.writes[key]
        return self.snapshot.get(key)


class SnapshotIsolationMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.db = Database()
        self.db.add_device(
            StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP)
        )
        self.db.create_table(
            TableSchema(
                "kv",
                (
                    Column("k", ColumnType.INTEGER),
                    Column("v", ColumnType.INTEGER),
                ),
                primary_key=("k",),
            ),
            device="ssd",
        )
        self.table = self.db.table("kv")
        self.committed: dict[int, int] = {}
        self.commit_ts: dict[int, int] = {}  # key -> ts of last commit
        self.writer: dict[int, _ModelTxn] = {}  # key -> live writer
        self.clock = 0
        self.open: list[_ModelTxn] = []

    txns = Bundle("txns")

    @rule(target=txns)
    def begin(self):
        model = _ModelTxn(self.db.begin(), self.committed, self.clock)
        self.open.append(model)
        return model

    def _write_allowed(self, model: _ModelTxn, key: int) -> bool:
        holder = self.writer.get(key)
        if holder is not None and holder is not model:
            return False
        if self.commit_ts.get(key, -1) > model.begin_ts:
            return False
        return True

    @precondition(lambda self: self.open)
    @rule(model=txns, key=st.sampled_from(KEYS), value=st.integers(0, 99))
    def upsert(self, model, key, value):
        if model not in self.open:
            return
        exists = model.visible(key) is not None
        if not self._write_allowed(model, key):
            with pytest.raises(SerializationConflictError):
                if exists:
                    self.table.update(model.txn, (key,), {"v": value})
                else:
                    self.table.insert(model.txn, {"k": key, "v": value})
            return
        if exists:
            assert self.table.update(model.txn, (key,), {"v": value})
        else:
            self.table.insert(model.txn, {"k": key, "v": value})
        model.writes[key] = value
        self.writer[key] = model

    @precondition(lambda self: self.open)
    @rule(model=txns, key=st.sampled_from(KEYS))
    def delete(self, model, key):
        if model not in self.open:
            return
        exists = model.visible(key) is not None
        if not exists:
            # Invisible rows are a no-op delete, never a conflict check
            # (the engine checks conflicts only on visible rows).
            if self.writer.get(key) not in (None, model) or (
                self.commit_ts.get(key, -1) <= model.begin_ts
            ):
                result = self.table.delete(model.txn, (key,))
                assert result is False
            return
        if not self._write_allowed(model, key):
            with pytest.raises(SerializationConflictError):
                self.table.delete(model.txn, (key,))
            return
        assert self.table.delete(model.txn, (key,)) is True
        model.writes[key] = None
        self.writer[key] = model

    @precondition(lambda self: self.open)
    @rule(model=txns)
    def commit(self, model):
        if model not in self.open:
            return
        model.txn.commit()
        self.clock += 1
        for key, value in model.writes.items():
            if value is None:
                self.committed.pop(key, None)
            else:
                self.committed[key] = value
            self.commit_ts[key] = self.clock
            if self.writer.get(key) is model:
                del self.writer[key]
        self.open.remove(model)

    @precondition(lambda self: self.open)
    @rule(model=txns)
    def abort(self, model):
        if model not in self.open:
            return
        model.txn.abort()
        for key in model.writes:
            if self.writer.get(key) is model:
                del self.writer[key]
        self.open.remove(model)

    @invariant()
    def reads_match_model(self):
        # Every open transaction sees snapshot + own writes.
        for model in self.open:
            for key in KEYS:
                row = self.table.get(model.txn, (key,))
                expected = model.visible(key)
                actual = None if row is None else row["v"]
                assert actual == expected, (
                    f"txn {model.txn.txn_id} key {key}: "
                    f"engine {actual} != model {expected}"
                )
        # A fresh reader sees exactly the committed state.
        with self.db.transaction() as reader:
            rows = {r["k"]: r["v"] for r in self.table.scan(reader)}
        assert rows == self.committed

    def teardown(self):
        for model in list(self.open):
            model.txn.abort()


SnapshotIsolationMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestSnapshotIsolation = SnapshotIsolationMachine.TestCase
