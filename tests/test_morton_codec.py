"""Unit and property tests for the Morton codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.morton import decode, decode_array, encode, encode_array
from repro.morton.codec import MAX_COORD_BITS

COORD = st.integers(min_value=0, max_value=(1 << MAX_COORD_BITS) - 1)


class TestScalarCodec:
    def test_origin_maps_to_zero(self):
        assert encode(0, 0, 0) == 0

    def test_unit_axes_interleave_in_xyz_order(self):
        assert encode(1, 0, 0) == 0b001
        assert encode(0, 1, 0) == 0b010
        assert encode(0, 0, 1) == 0b100

    def test_known_code(self):
        # (3, 5, 1): x=011, y=101, z=001; per-bit (z y x) groups are
        # bit2: 010, bit1: 001, bit0: 111 -> code 0b010_001_111.
        assert encode(3, 5, 1) == 0b010001111

    def test_decode_inverts_encode(self):
        assert decode(encode(100, 200, 300)) == (100, 200, 300)

    def test_max_coordinate_round_trips(self):
        m = (1 << MAX_COORD_BITS) - 1
        assert decode(encode(m, m, m)) == (m, m, m)

    def test_negative_coordinate_rejected(self):
        with pytest.raises(ValueError):
            encode(-1, 0, 0)

    def test_too_large_coordinate_rejected(self):
        with pytest.raises(ValueError):
            encode(1 << MAX_COORD_BITS, 0, 0)

    def test_negative_code_rejected(self):
        with pytest.raises(ValueError):
            decode(-1)

    def test_too_wide_code_rejected(self):
        with pytest.raises(ValueError):
            decode(1 << 63)

    def test_x_varies_fastest_along_curve(self):
        # The first 8 codes enumerate the unit cube with x fastest.
        expected = [
            (0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0),
            (0, 0, 1), (1, 0, 1), (0, 1, 1), (1, 1, 1),
        ]
        assert [decode(c) for c in range(8)] == expected


class TestCodecProperties:
    @given(COORD, COORD, COORD)
    def test_round_trip(self, x, y, z):
        assert decode(encode(x, y, z)) == (x, y, z)

    @given(COORD, COORD, COORD, COORD, COORD, COORD)
    def test_codes_are_unique(self, x1, y1, z1, x2, y2, z2):
        if (x1, y1, z1) != (x2, y2, z2):
            assert encode(x1, y1, z1) != encode(x2, y2, z2)

    @given(st.integers(min_value=0, max_value=2**18 - 1))
    def test_octant_locality(self, code):
        # All 8 codes of one octant share the same parent cell coordinates.
        base = code * 8
        parents = {
            tuple(c // 2 for c in decode(base + i)) for i in range(8)
        }
        assert len(parents) == 1


class TestArrayCodec:
    def test_matches_scalar_codec(self):
        rng = np.random.default_rng(7)
        pts = rng.integers(0, 1 << 12, size=(64, 3))
        codes = encode_array(pts[:, 0], pts[:, 1], pts[:, 2])
        expected = [encode(*map(int, p)) for p in pts]
        assert codes.tolist() == expected

    def test_decode_array_inverts(self):
        codes = np.arange(4096, dtype=np.uint64)
        x, y, z = decode_array(codes)
        assert encode_array(x, y, z).tolist() == codes.tolist()

    def test_preserves_shape(self):
        x = np.zeros((3, 4), dtype=np.int64)
        assert encode_array(x, x, x).shape == (3, 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            encode_array(np.array([-1]), np.array([0]), np.array([0]))

    def test_empty_arrays(self):
        out = encode_array(np.array([], int), np.array([], int), np.array([], int))
        assert out.size == 0
