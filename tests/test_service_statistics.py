"""Tests for the mediator's service statistics (cache hit ratios)."""

import numpy as np
import pytest

from repro.core import ThresholdQuery
from tests.test_core_threshold import ground_truth_norm


@pytest.fixture()
def query(small_mhd):
    norm = ground_truth_norm(small_mhd, "vorticity", 0)
    return ThresholdQuery(
        "mhd", "vorticity", 0, float(np.quantile(norm, 0.99))
    )


class TestServiceStatistics:
    def test_starts_empty(self, mhd_cluster):
        stats = mhd_cluster.statistics
        assert stats.threshold_queries == 0
        assert stats.cache_hit_ratio == 0.0

    def test_counts_queries_and_hits(self, mhd_cluster, query):
        mhd_cluster.threshold(query)  # miss
        mhd_cluster.threshold(query)  # hit
        mhd_cluster.threshold(query)  # hit
        stats = mhd_cluster.statistics
        assert stats.threshold_queries == 3
        assert stats.node_queries == 12
        assert stats.node_cache_hits == 8
        assert stats.cache_hit_ratio == pytest.approx(8 / 12)

    def test_points_and_seconds_accumulate(self, mhd_cluster, query):
        first = mhd_cluster.threshold(query)
        stats = mhd_cluster.statistics
        assert stats.points_returned == len(first)
        assert stats.simulated_seconds == pytest.approx(first.elapsed)
        mhd_cluster.threshold(query)
        assert stats.points_returned == 2 * len(first)

    def test_structured_workload_reaches_high_hit_ratio(self, small_mhd, mhd_cluster):
        """Paper §5.2: structured workloads produce high hit ratios."""
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        base = float(np.quantile(norm, 0.99))
        # One cold exploration, then a structured sweep of refinements.
        mhd_cluster.threshold(ThresholdQuery("mhd", "vorticity", 0, base))
        for scale in (1.05, 1.1, 1.2, 1.3, 1.5, 2.0):
            mhd_cluster.threshold(
                ThresholdQuery("mhd", "vorticity", 0, base * scale)
            )
        assert mhd_cluster.statistics.cache_hit_ratio > 0.8
