"""Tests for MVCC snapshot isolation, tables, indexes and foreign keys."""

import pytest

from repro.costmodel import Category, CostLedger
from repro.costmodel.devices import HddArraySpec, SsdSpec
from repro.storage import (
    Column,
    ColumnType,
    Database,
    DuplicateKeyError,
    ForeignKey,
    ForeignKeyError,
    SchemaError,
    SerializationConflictError,
    StorageDevice,
    TableNotFoundError,
    TableSchema,
    TransactionError,
)


@pytest.fixture
def db():
    database = Database("test")
    database.add_device(StorageDevice("hdd", HddArraySpec(), Category.IO))
    database.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))
    database.create_table(
        TableSchema(
            "info",
            (
                Column("ordinal", ColumnType.INTEGER),
                Column("field", ColumnType.TEXT),
                Column("threshold", ColumnType.FLOAT, nullable=True),
            ),
            primary_key=("ordinal",),
            indexes={"by_field": ("field",)},
        ),
        device="ssd",
    )
    database.create_table(
        TableSchema(
            "data",
            (
                Column("info_ordinal", ColumnType.INTEGER),
                Column("zindex", ColumnType.BIGINT),
                Column("value", ColumnType.FLOAT),
            ),
            primary_key=("info_ordinal", "zindex"),
            indexes={"by_info": ("info_ordinal",)},
            foreign_keys=(ForeignKey(("info_ordinal",), "info", cascade=True),),
        ),
        device="ssd",
    )
    return database


class TestCrud:
    def test_insert_and_get(self, db):
        with db.transaction() as txn:
            db.table("info").insert(txn, {"ordinal": 1, "field": "vorticity"})
        with db.transaction() as txn:
            row = db.table("info").get(txn, (1,))
        assert row["field"] == "vorticity"

    def test_duplicate_key_rejected(self, db):
        with db.transaction() as txn:
            db.table("info").insert(txn, {"ordinal": 1, "field": "a"})
            with pytest.raises(DuplicateKeyError):
                db.table("info").insert(txn, {"ordinal": 1, "field": "b"})
            txn.abort()

    def test_delete(self, db):
        with db.transaction() as txn:
            db.table("info").insert(txn, {"ordinal": 1, "field": "a"})
        with db.transaction() as txn:
            assert db.table("info").delete(txn, (1,)) is True
        with db.transaction() as txn:
            assert db.table("info").get(txn, (1,)) is None
            assert db.table("info").delete(txn, (1,)) is False

    def test_update(self, db):
        with db.transaction() as txn:
            db.table("info").insert(txn, {"ordinal": 1, "field": "a", "threshold": 10.0})
        with db.transaction() as txn:
            assert db.table("info").update(txn, (1,), {"threshold": 5.0})
        with db.transaction() as txn:
            assert db.table("info").get(txn, (1,))["threshold"] == 5.0

    def test_update_missing_row(self, db):
        with db.transaction() as txn:
            assert db.table("info").update(txn, (9,), {"threshold": 1.0}) is False

    def test_update_pk_rejected(self, db):
        with db.transaction() as txn:
            db.table("info").insert(txn, {"ordinal": 1, "field": "a"})
            with pytest.raises(SchemaError):
                db.table("info").update(txn, (1,), {"ordinal": 2})
            txn.abort()

    def test_scan_in_key_order(self, db):
        with db.transaction() as txn:
            for ordinal in (3, 1, 2):
                db.table("info").insert(txn, {"ordinal": ordinal, "field": "f"})
        with db.transaction() as txn:
            rows = list(db.table("info").scan(txn))
        assert [r["ordinal"] for r in rows] == [1, 2, 3]

    def test_range_scan_compound_key(self, db):
        with db.transaction() as txn:
            db.table("info").insert(txn, {"ordinal": 1, "field": "f"})
            for z in range(10):
                db.table("data").insert(
                    txn, {"info_ordinal": 1, "zindex": z, "value": float(z)}
                )
        with db.transaction() as txn:
            rows = list(db.table("data").scan(txn, (1, 3), (1, 7)))
        assert [r["zindex"] for r in rows] == [3, 4, 5, 6]

    def test_count(self, db):
        with db.transaction() as txn:
            assert db.table("info").count(txn) == 0
            db.table("info").insert(txn, {"ordinal": 1, "field": "f"})
            assert db.table("info").count(txn) == 1

    def test_secondary_index_lookup(self, db):
        with db.transaction() as txn:
            db.table("info").insert(txn, {"ordinal": 1, "field": "vorticity"})
            db.table("info").insert(txn, {"ordinal": 2, "field": "q"})
            db.table("info").insert(txn, {"ordinal": 3, "field": "vorticity"})
        with db.transaction() as txn:
            rows = list(db.table("info").lookup(txn, "by_field", ("vorticity",)))
        assert [r["ordinal"] for r in rows] == [1, 3]

    def test_unknown_index(self, db):
        from repro.storage.errors import StorageError

        with db.transaction() as txn:
            with pytest.raises(StorageError):
                list(db.table("info").lookup(txn, "nope", (1,)))
            txn.abort()


class TestSnapshotIsolation:
    def test_reader_sees_stable_snapshot(self, db):
        with db.transaction() as setup:
            db.table("info").insert(setup, {"ordinal": 1, "field": "a"})
        reader = db.begin()
        writer = db.begin()
        db.table("info").update(writer, (1,), {"field": "b"})
        writer.commit()
        # Reader's snapshot predates the writer's commit.
        assert db.table("info").get(reader, (1,))["field"] == "a"
        reader.commit()
        with db.transaction() as txn:
            assert db.table("info").get(txn, (1,))["field"] == "b"

    def test_uncommitted_writes_invisible(self, db):
        writer = db.begin()
        db.table("info").insert(writer, {"ordinal": 1, "field": "a"})
        with db.transaction() as reader:
            assert db.table("info").get(reader, (1,)) is None
        writer.commit()

    def test_own_writes_visible(self, db):
        with db.transaction() as txn:
            db.table("info").insert(txn, {"ordinal": 1, "field": "a"})
            assert db.table("info").get(txn, (1,))["field"] == "a"

    def test_write_write_conflict(self, db):
        with db.transaction() as setup:
            db.table("info").insert(setup, {"ordinal": 1, "field": "a"})
        t1 = db.begin()
        t2 = db.begin()
        db.table("info").update(t1, (1,), {"field": "t1"})
        with pytest.raises(SerializationConflictError):
            db.table("info").update(t2, (1,), {"field": "t2"})
        t1.commit()
        t2.abort()

    def test_first_updater_wins_after_commit(self, db):
        with db.transaction() as setup:
            db.table("info").insert(setup, {"ordinal": 1, "field": "a"})
        stale = db.begin()  # snapshot taken now
        with db.transaction() as fresh:
            db.table("info").update(fresh, (1,), {"field": "new"})
        with pytest.raises(SerializationConflictError):
            db.table("info").update(stale, (1,), {"field": "stale"})
        stale.abort()

    def test_abort_rolls_back_insert(self, db):
        txn = db.begin()
        db.table("info").insert(txn, {"ordinal": 1, "field": "a"})
        txn.abort()
        with db.transaction() as reader:
            assert db.table("info").get(reader, (1,)) is None
            assert db.table("info").count(reader) == 0

    def test_abort_rolls_back_delete(self, db):
        with db.transaction() as setup:
            db.table("info").insert(setup, {"ordinal": 1, "field": "a"})
        txn = db.begin()
        db.table("info").delete(txn, (1,))
        txn.abort()
        with db.transaction() as reader:
            assert db.table("info").get(reader, (1,)) is not None

    def test_abort_rolls_back_index_entries(self, db):
        txn = db.begin()
        db.table("info").insert(txn, {"ordinal": 1, "field": "x"})
        txn.abort()
        with db.transaction() as reader:
            assert list(db.table("info").lookup(reader, "by_field", ("x",))) == []

    def test_context_manager_aborts_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                db.table("info").insert(txn, {"ordinal": 1, "field": "a"})
                raise RuntimeError("boom")
        with db.transaction() as reader:
            assert db.table("info").get(reader, (1,)) is None

    def test_operations_after_commit_rejected(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            db.table("info").insert(txn, {"ordinal": 1, "field": "a"})
        with pytest.raises(TransactionError):
            txn.commit()

    def test_delete_insert_same_txn(self, db):
        with db.transaction() as setup:
            db.table("info").insert(setup, {"ordinal": 1, "field": "old"})
        with db.transaction() as txn:
            db.table("info").delete(txn, (1,))
            db.table("info").insert(txn, {"ordinal": 1, "field": "new"})
        with db.transaction() as reader:
            assert db.table("info").get(reader, (1,))["field"] == "new"


class TestForeignKeys:
    def test_insert_requires_parent(self, db):
        with db.transaction() as txn:
            with pytest.raises(ForeignKeyError):
                db.table("data").insert(
                    txn, {"info_ordinal": 9, "zindex": 0, "value": 1.0}
                )
            txn.abort()

    def test_cascade_delete(self, db):
        with db.transaction() as txn:
            db.table("info").insert(txn, {"ordinal": 1, "field": "a"})
            for z in range(3):
                db.table("data").insert(
                    txn, {"info_ordinal": 1, "zindex": z, "value": 0.0}
                )
        with db.transaction() as txn:
            db.table("info").delete(txn, (1,))
        with db.transaction() as reader:
            assert db.table("data").count(reader) == 0

    def test_restrict_without_cascade(self):
        database = Database()
        database.add_device(StorageDevice("d", SsdSpec(), Category.CACHE_LOOKUP))
        database.create_table(
            TableSchema("p", (Column("id", ColumnType.INTEGER),), ("id",)),
            device="d",
        )
        database.create_table(
            TableSchema(
                "c",
                (Column("id", ColumnType.INTEGER), Column("pid", ColumnType.INTEGER)),
                ("id",),
                foreign_keys=(ForeignKey(("pid",), "p"),),
            ),
            device="d",
        )
        with database.transaction() as txn:
            database.table("p").insert(txn, {"id": 1})
            database.table("c").insert(txn, {"id": 10, "pid": 1})
        with database.transaction() as txn:
            with pytest.raises(ForeignKeyError):
                database.table("p").delete(txn, (1,))
            txn.abort()

    def test_fk_to_unknown_parent_rejected(self):
        database = Database()
        database.add_device(StorageDevice("d", SsdSpec(), Category.CACHE_LOOKUP))
        with pytest.raises(SchemaError):
            database.create_table(
                TableSchema(
                    "c",
                    (Column("id", ColumnType.INTEGER),),
                    ("id",),
                    foreign_keys=(ForeignKey(("id",), "nope"),),
                ),
                device="d",
            )


class TestDatabaseCatalog:
    def test_unknown_table(self, db):
        with pytest.raises(TableNotFoundError):
            db.table("missing")

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table(
                TableSchema("info", (Column("x", ColumnType.INTEGER),), ("x",)),
                device="ssd",
            )

    def test_duplicate_device_rejected(self, db):
        with pytest.raises(SchemaError):
            db.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))

    def test_drop_table(self, db):
        db.drop_table("data")
        with pytest.raises(TableNotFoundError):
            db.table("data")

    def test_drop_referenced_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.drop_table("info")

    def test_table_names(self, db):
        assert db.table_names == ["data", "info"]

    def test_vacuum_reclaims_dead_versions(self, db):
        with db.transaction() as txn:
            db.table("info").insert(txn, {"ordinal": 1, "field": "a"})
        with db.transaction() as txn:
            db.table("info").update(txn, (1,), {"field": "b"})
            db.table("info").insert(txn, {"ordinal": 2, "field": "c"})
        with db.transaction() as txn:
            db.table("info").delete(txn, (2,))
        reclaimed = db.vacuum()
        assert reclaimed == 2  # the superseded 'a' and the deleted 'c'
        with db.transaction() as reader:
            assert db.table("info").get(reader, (1,))["field"] == "b"
            assert db.table("info").get(reader, (2,)) is None


class TestLedgerCharging:
    def test_reads_charge_bound_ledger(self, db):
        with db.transaction() as setup:
            db.table("info").insert(setup, {"ordinal": 1, "field": "a"})
        db.drop_page_cache()
        ledger = CostLedger()
        with db.transaction(ledger) as txn:
            db.table("info").get(txn, (1,))
        assert ledger[Category.CACHE_LOOKUP] > 0

    def test_buffer_hit_is_free_on_second_read(self, db):
        with db.transaction() as setup:
            db.table("info").insert(setup, {"ordinal": 1, "field": "a"})
        db.drop_page_cache()
        ledger = CostLedger()
        with db.transaction(ledger) as txn:
            db.table("info").get(txn, (1,))
            cold = ledger[Category.CACHE_LOOKUP]
            db.table("info").get(txn, (1,))
            assert ledger[Category.CACHE_LOOKUP] == cold

    def test_commit_flush_charges_writes(self, db):
        ledger = CostLedger()
        with db.transaction(ledger) as txn:
            db.table("info").insert(txn, {"ordinal": 1, "field": "a"})
        read_then_flush = ledger[Category.CACHE_LOOKUP]
        assert read_then_flush > 0
