"""Tests for repro.obs metrics: instruments, labels, exporters."""

import io
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    timed,
)
from repro.obs.report import report, set_stream


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram(buckets=[1.0, 5.0, 10.0])
        for value in (0.5, 0.7, 3.0, 7.0, 100.0):
            hist.observe(value)
        counts = hist.bucket_counts()
        assert counts["1.0"] == 2
        assert counts["5.0"] == 3
        assert counts["10.0"] == 4
        assert counts["+Inf"] == 5
        assert hist.count == 5
        assert hist.sum == pytest.approx(111.2)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=[5.0, 1.0])

    def test_histogram_mean(self):
        hist = Histogram(buckets=[1.0, 10.0])
        assert hist.mean == 0.0  # no observations yet
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        assert hist.mean == pytest.approx(4.0)

    def test_counter_is_thread_safe(self):
        counter = Counter()

        def spin():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestLabels:
    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("queries_total", labelnames=["kind"])
        family.labels(kind="threshold").inc(3)
        family.labels(kind="pdf").inc()
        assert family.labels(kind="threshold").value == 3.0
        assert family.labels(kind="pdf").value == 1.0

    def test_wrong_label_names_raise(self):
        registry = MetricsRegistry()
        family = registry.counter("queries_total", labelnames=["kind"])
        with pytest.raises(ValueError):
            family.labels(flavour="threshold")

    def test_cardinality_cap(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "queries_total", labelnames=["kind"], max_series=3
        )
        for i in range(3):
            family.labels(kind=f"k{i}").inc()
        with pytest.raises(ValueError, match="cardinality cap"):
            family.labels(kind="one-too-many")

    def test_labelled_family_rejects_bare_inc(self):
        registry = MetricsRegistry()
        family = registry.counter("queries_total", labelnames=["kind"])
        with pytest.raises(ValueError):
            family.inc()


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total")
        assert registry.counter("hits_total") is first

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits_total")
        with pytest.raises(ValueError):
            registry.gauge("hits_total")

    def test_invalid_metric_name_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name")

    def test_gauge_callback_sampled_only_at_export(self):
        registry = MetricsRegistry()
        calls = []

        def sample():
            calls.append(1)
            return 42.0

        registry.gauge_callback("pool_hits", sample)
        assert calls == []  # registration alone never samples
        snapshot = registry.to_dict()
        assert snapshot["pool_hits"]["samples"][0]["value"] == 42.0
        assert len(calls) == 1

    def test_callback_name_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits_total")
        with pytest.raises(ValueError):
            registry.gauge_callback("hits_total", lambda: 0.0)


class TestExports:
    def build_registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "queries_total", "Queries served", labelnames=["kind"]
        ).labels(kind="threshold").inc(3)
        latency = registry.histogram(
            "latency_seconds", "Latency", buckets=[0.1, 1.0]
        )
        latency.observe(0.05)
        latency.observe(5.0)
        registry.gauge("in_flight").set(2)
        return registry

    def test_prometheus_text_format(self):
        text = self.build_registry().render_prometheus()
        assert "# TYPE queries_total counter" in text
        assert 'queries_total{kind="threshold"} 3.0' in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_sum 5.05" in text
        assert "latency_seconds_count 2" in text
        assert "in_flight 2.0" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", labelnames=["path"]).labels(
            path='a"b\\c\nd'
        ).inc()
        text = registry.render_prometheus()
        assert r'odd_total{path="a\"b\\c\nd"} 1.0' in text

    def test_to_dict_round_trips_through_json(self):
        import json

        snapshot = self.build_registry().to_dict()
        assert snapshot["queries_total"]["kind"] == "counter"
        assert snapshot["queries_total"]["samples"][0]["value"] == 3.0
        assert snapshot["latency_seconds"]["samples"][0]["count"] == 2
        json.dumps(snapshot)  # must not raise

    def test_default_buckets_ascend(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", 'line one\nback\\slash "quoted"')
        text = registry.render_prometheus()
        assert '# HELP odd_total line one\\nback\\\\slash "quoted"' in text
        assert "\nline one" not in text  # the newline never splits the line

    def test_type_line_once_per_labelled_family(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "queries_total", "Queries served", labelnames=["kind"]
        )
        for kind in ("threshold", "pdf", "topk"):
            family.labels(kind=kind).inc()
        text = registry.render_prometheus()
        assert text.count("# TYPE queries_total counter") == 1
        assert text.count("# HELP queries_total") == 1
        # ...and every series still renders.
        for kind in ("threshold", "pdf", "topk"):
            assert f'queries_total{{kind="{kind}"}} 1.0' in text

    def test_histogram_exemplar_renders_on_its_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", buckets=[0.1, 1.0])
        hist.observe(0.05, exemplar="q000001")
        hist.observe(0.5, exemplar="q000002")
        hist.observe(5.0, exemplar="q000003")
        text = registry.render_prometheus()
        bucket_lines = {
            line.split(" # ")[0]: line
            for line in text.splitlines()
            if "latency_seconds_bucket" in line
        }
        assert '# {trace_id="q000001"} 0.05' in (
            bucket_lines['latency_seconds_bucket{le="0.1"} 1']
        )
        assert '# {trace_id="q000002"} 0.5' in (
            bucket_lines['latency_seconds_bucket{le="1.0"} 2']
        )
        assert '# {trace_id="q000003"} 5.0' in (
            bucket_lines['latency_seconds_bucket{le="+Inf"} 3']
        )

    def test_exemplar_last_observation_wins_per_bucket(self):
        hist = Histogram(buckets=[1.0])
        hist.observe(0.2, exemplar="q_old")
        hist.observe(0.3, exemplar="q_new")
        hist.observe(0.4)  # untagged observations keep the last exemplar
        exemplars = hist.exemplars()
        assert exemplars["1.0"][0] == "q_new"
        assert exemplars["1.0"][1] == 0.3
        assert "+Inf" not in exemplars

    def test_exemplars_survive_to_dict(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", buckets=[1.0])
        hist.observe(0.2, exemplar="q000009")
        sample = registry.to_dict()["latency_seconds"]["samples"][0]
        assert sample["exemplars"]["1.0"]["trace_id"] == "q000009"
        assert sample["exemplars"]["1.0"]["value"] == 0.2


class TestConcurrentLabelChurn:
    def test_cap_holds_and_no_increment_is_lost_under_churn(self):
        """Concurrent label churn: the cardinality cap is enforced
        race-free (never one series over) and every increment that was
        accepted lands on exactly one series."""
        registry = MetricsRegistry()
        cap = 16
        family = registry.counter(
            "churn_total", labelnames=["key"], max_series=cap
        )
        workers = 8
        per_worker = 400
        accepted = [0] * workers
        start = threading.Barrier(workers)

        def churn(worker: int) -> None:
            start.wait()
            for i in range(per_worker):
                # Everyone races to create overlapping label values: the
                # first `cap` distinct keys win, the rest must raise.
                key = f"k{(worker * per_worker + i) % (cap * 2)}"
                try:
                    family.labels(key=key).inc()
                except ValueError:
                    continue
                accepted[worker] += 1

        threads = [
            threading.Thread(target=churn, args=(w,)) for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        samples = registry.to_dict()["churn_total"]["samples"]
        assert len(samples) <= cap
        total = sum(sample["value"] for sample in samples)
        assert total == sum(accepted)

    def test_histogram_observations_race_free_per_series(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "churn_seconds", labelnames=["kind"], buckets=[0.5]
        )
        workers = 6
        per_worker = 500
        start = threading.Barrier(workers)

        def observe(worker: int) -> None:
            start.wait()
            for i in range(per_worker):
                family.labels(kind=f"k{i % 3}").observe(
                    0.25, exemplar=f"q{worker:02d}{i:04d}"
                )

        threads = [
            threading.Thread(target=observe, args=(w,))
            for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        samples = registry.to_dict()["churn_seconds"]["samples"]
        assert len(samples) == 3
        assert sum(s["count"] for s in samples) == workers * per_worker
        for sample in samples:
            # The surviving exemplar is one that was actually observed.
            exemplar = sample["exemplars"]["0.5"]["trace_id"]
            assert exemplar.startswith("q")


class TestTimedAndReport:
    def test_timed_observes_wall_time(self):
        registry = MetricsRegistry()
        hist = registry.histogram("op_seconds", buckets=[10.0])
        with timed(hist):
            pass
        assert hist.count == 1
        assert 0.0 <= hist.sum < 10.0

    def test_report_honours_set_stream(self):
        sink = io.StringIO()
        set_stream(sink)
        try:
            report("hello", 42, sep="-")
        finally:
            set_stream(None)
        assert sink.getvalue() == "hello-42\n"

    def test_report_error_goes_to_stderr(self, capsys):
        report("oops", error=True)
        captured = capsys.readouterr()
        assert captured.err == "oops\n"
        assert captured.out == ""
