"""OBS01 (observability discipline) checker tests."""

from repro.lint.checkers.obs01 import ObsDiscipline

from tests.lint_helpers import load, run_checker


def test_clean_fixture_passes():
    source = load("obs01_good.py", "repro.core.fixture_good")
    assert run_checker(ObsDiscipline(), source) == []


def test_bad_fixture_reports_each_violation():
    source = load("obs01_bad.py", "repro.core.fixture_bad")
    diags = run_checker(ObsDiscipline(), source)
    assert len(diags) == 5
    messages = "\n".join(d.message for d in diags)
    assert "'import time'" in messages
    assert "'from time import perf_counter'" in messages
    assert "time.perf_counter()" in messages
    assert "bare print()" in messages
    assert "outside a with-statement" in messages


def test_harness_is_in_scope_but_obs_is_not():
    checker = ObsDiscipline()
    assert checker.applies("repro.harness.bench")
    assert checker.applies("repro.lint.cli")
    assert checker.applies("repro.core.threshold")
    assert not checker.applies("repro.obs.clock")
    assert not checker.applies("repro.obs.tracing")
    assert not checker.applies("numpy.random")


def test_with_managed_span_is_clean():
    source = load("obs01_good.py", "repro.cluster.fixture")
    spans = [d for d in run_checker(ObsDiscipline(), source)
             if "span" in d.message]
    assert spans == []


def test_net_server_path_fixture_reports_each_violation():
    """Server-path shapes: datetime.now and sys.stderr.write count too."""
    source = load("obs01_net_bad.py", "repro.net.fixture_server")
    diags = run_checker(ObsDiscipline(), source)
    assert len(diags) == 5
    messages = "\n".join(d.message for d in diags)
    assert "'import time'" in messages
    assert "time.time()" in messages
    assert "datetime.now()" in messages
    assert "bare print()" in messages
    assert "sys.stderr.write()" in messages


def test_clean_net_server_path_passes():
    source = load("obs01_net_good.py", "repro.net.fixture_server")
    assert run_checker(ObsDiscipline(), source) == []


def test_net_and_cluster_server_paths_are_in_scope():
    checker = ObsDiscipline()
    assert checker.applies("repro.net.server")
    assert checker.applies("repro.net.pool")
    assert checker.applies("repro.cluster.mediator")
    assert checker.applies("repro.cluster.webservice")
