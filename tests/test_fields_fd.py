"""Tests for finite differences and differential operators."""

import numpy as np
import pytest

from repro.fields import (
    SUPPORTED_ORDERS,
    curl_interior,
    curl_periodic,
    derivative_interior,
    derivative_periodic,
    divergence_periodic,
    fd_coefficients,
    gradient_tensor_interior,
    gradient_tensor_periodic,
    kernel_half_width,
)
from repro.fields.operators import (
    q_criterion_from_gradient,
    r_invariant_from_gradient,
)

SIDE = 32
SPACING = 2 * np.pi / SIDE


def grid():
    coords = np.arange(SIDE) * SPACING
    return np.meshgrid(coords, coords, coords, indexing="ij")


class TestCoefficients:
    def test_supported_orders(self):
        for order in SUPPORTED_ORDERS:
            coeffs = fd_coefficients(order)
            assert len(coeffs) == order // 2

    def test_unsupported_order(self):
        with pytest.raises(ValueError):
            fd_coefficients(3)

    def test_half_width(self):
        assert kernel_half_width(2) == 1
        assert kernel_half_width(4) == 2
        assert kernel_half_width(8) == 4

    def test_fourth_order_matches_paper_eq2(self):
        # Paper Eq. 2: 2/3 (f+1 - f-1) - 1/12 (f+2 - f-2).
        assert fd_coefficients(4) == (2 / 3, -1 / 12)

    def test_coefficients_are_consistent(self):
        # A centred first-derivative stencil must reproduce d(x)/dx = 1:
        # sum_k c_k * 2k = 1.
        for order in SUPPORTED_ORDERS:
            total = sum(2 * k * c for k, c in enumerate(fd_coefficients(order), 1))
            assert total == pytest.approx(1.0)


class TestPeriodicDerivative:
    @pytest.mark.parametrize("order", SUPPORTED_ORDERS)
    def test_derivative_of_sine(self, order):
        x, _, _ = grid()
        data = np.sin(x)
        out = derivative_periodic(data, 0, SPACING, order)
        error = np.max(np.abs(out - np.cos(x)))
        assert error < 10.0 ** (-(order - 1))

    def test_higher_order_is_more_accurate(self):
        x, _, _ = grid()
        data = np.sin(3 * x)
        errors = [
            np.max(np.abs(derivative_periodic(data, 0, SPACING, o) - 3 * np.cos(3 * x)))
            for o in SUPPORTED_ORDERS
        ]
        assert errors == sorted(errors, reverse=True)

    def test_axis_selection(self):
        _, y, _ = grid()
        data = np.sin(y)
        out = derivative_periodic(data, 1, SPACING, 4)
        assert np.allclose(out, np.cos(y), atol=1e-3)
        assert np.allclose(derivative_periodic(data, 0, SPACING, 4), 0, atol=1e-10)

    def test_constant_has_zero_derivative(self):
        data = np.full((8, 8, 8), 3.14)
        assert np.allclose(derivative_periodic(data, 2, 1.0, 4), 0)

    def test_invalid_arguments(self):
        data = np.zeros((8, 8, 8))
        with pytest.raises(ValueError):
            derivative_periodic(data, 3, 1.0)
        with pytest.raises(ValueError):
            derivative_periodic(data, 0, 0.0)

    def test_trailing_component_axes_pass_through(self):
        x, _, _ = grid()
        data = np.stack([np.sin(x), np.cos(x)], axis=-1)
        out = derivative_periodic(data, 0, SPACING, 4)
        assert np.allclose(out[..., 0], np.cos(x), atol=1e-3)
        assert np.allclose(out[..., 1], -np.sin(x), atol=1e-3)


class TestInteriorDerivative:
    @pytest.mark.parametrize("order", SUPPORTED_ORDERS)
    def test_matches_periodic_on_interior(self, order):
        x, y, z = grid()
        data = np.sin(x) * np.cos(2 * y) + np.sin(z)
        margin = kernel_half_width(order)
        padded = np.pad(data, margin, mode="wrap")
        interior = derivative_interior(padded, 0, SPACING, order)
        full = derivative_periodic(data, 0, SPACING, order)
        assert np.allclose(interior, full, atol=1e-10)

    def test_margin_larger_than_stencil(self):
        x, _, _ = grid()
        data = np.sin(x)
        padded = np.pad(data, 4, mode="wrap")
        out = derivative_interior(padded, 0, SPACING, 2, margin=4)
        assert out.shape == data.shape
        assert np.allclose(out, np.cos(x), atol=1e-1)

    def test_margin_too_small_rejected(self):
        with pytest.raises(ValueError):
            derivative_interior(np.zeros((10, 10, 10)), 0, 1.0, 8, margin=1)

    def test_block_thinner_than_halo_rejected(self):
        with pytest.raises(ValueError):
            derivative_interior(np.zeros((3, 10, 10)), 0, 1.0, 4)


class TestCurl:
    def test_curl_of_known_field(self):
        # v = (0, 0, sin(x)) -> curl = (0, -cos(x), 0)... wait:
        # curl = (dvz/dy - dvy/dz, dvx/dz - dvz/dx, dvy/dx - dvx/dy)
        x, _, _ = grid()
        field = np.zeros(x.shape + (3,))
        field[..., 2] = np.sin(x)
        curl = curl_periodic(field, SPACING, 4)
        assert np.allclose(curl[..., 0], 0, atol=1e-10)
        assert np.allclose(curl[..., 1], -np.cos(x), atol=1e-3)
        assert np.allclose(curl[..., 2], 0, atol=1e-10)

    def test_curl_of_gradient_vanishes(self):
        x, y, z = grid()
        phi = np.sin(x) * np.cos(y) * np.sin(2 * z)
        gradient = np.stack(
            [derivative_periodic(phi, ax, SPACING, 8) for ax in range(3)], axis=-1
        )
        curl = curl_periodic(gradient, SPACING, 8)
        assert np.max(np.abs(curl)) < 1e-4

    def test_interior_matches_periodic(self):
        rng = np.random.default_rng(0)
        field = rng.normal(size=(16, 16, 16, 3))
        margin = kernel_half_width(4)
        padded = np.pad(field, [(margin,) * 2] * 3 + [(0, 0)], mode="wrap")
        interior = curl_interior(padded, 1.0, 4)
        full = curl_periodic(field, 1.0, 4)
        assert np.allclose(interior, full, atol=1e-10)

    def test_rejects_non_vector(self):
        with pytest.raises(ValueError):
            curl_periodic(np.zeros((8, 8, 8)), 1.0)


class TestGradientTensorAndInvariants:
    def test_tensor_shape_and_values(self):
        x, y, _ = grid()
        field = np.zeros(x.shape + (3,))
        field[..., 0] = np.sin(y)  # dvx/dy = cos(y)
        tensor = gradient_tensor_periodic(field, SPACING, 4)
        assert tensor.shape == x.shape + (3, 3)
        assert np.allclose(tensor[..., 0, 1], np.cos(y), atol=1e-3)
        assert np.allclose(tensor[..., 1, 0], 0, atol=1e-10)

    def test_interior_matches_periodic(self):
        rng = np.random.default_rng(1)
        field = rng.normal(size=(16, 16, 16, 3))
        margin = kernel_half_width(6)
        padded = np.pad(field, [(margin,) * 2] * 3 + [(0, 0)], mode="wrap")
        interior = gradient_tensor_interior(padded, 1.0, 6)
        assert np.allclose(interior, gradient_tensor_periodic(field, 1.0, 6), atol=1e-10)

    def test_q_criterion_of_pure_rotation_positive(self):
        # Solid-body rotation: A = [[0, -w, 0], [w, 0, 0], [0, 0, 0]].
        omega = 2.0
        tensor = np.zeros((4, 4, 4, 3, 3))
        tensor[..., 0, 1] = -omega
        tensor[..., 1, 0] = omega
        q = q_criterion_from_gradient(tensor)
        assert np.allclose(q, omega**2)

    def test_q_criterion_of_pure_strain_negative(self):
        tensor = np.zeros((2, 2, 2, 3, 3))
        tensor[..., 0, 0] = 1.0
        tensor[..., 1, 1] = -1.0
        q = q_criterion_from_gradient(tensor)
        assert np.all(q < 0)

    def test_r_invariant_is_negative_determinant(self):
        rng = np.random.default_rng(2)
        tensor = rng.normal(size=(3, 3, 3, 3, 3))
        r = r_invariant_from_gradient(tensor)
        assert np.allclose(r, -np.linalg.det(tensor))


class TestDivergence:
    def test_divergence_of_solenoidal_projection(self):
        from repro.simulation import solenoidal_field

        field = solenoidal_field(SIDE, seed=5, dtype=np.float64)
        div = divergence_periodic(field, SPACING, 8)
        scale = np.sqrt(np.mean(np.sum(field**2, axis=-1)))
        assert np.max(np.abs(div)) / scale < 0.35  # FD residual of spectral solenoidality
