"""Tests for the declarative derived-field expression language."""

import numpy as np
import pytest

from repro.core import ThresholdQuery
from repro.fields import default_registry
from repro.fields.expressions import (
    ExpressionError,
    compile_expression,
)
from repro.fields.finite_difference import kernel_half_width


def padded(field, margin):
    if margin == 0:
        return field
    pads = [(margin,) * 2] * 3 + [(0, 0)]
    return np.pad(field, pads, mode="wrap")


def evaluate(text, field, spacing=0.5, order=4):
    expression = compile_expression(text)
    derived = expression.as_derived_field("test")
    block = padded(field, derived.halo(order))
    return derived.norm(block, spacing, order), derived


@pytest.fixture(scope="module")
def velocity():
    rng = np.random.default_rng(3)
    return rng.normal(size=(16, 16, 16, 3))


class TestCompilation:
    def test_vorticity_expression(self):
        expression = compile_expression("norm(curl(velocity))")
        assert expression.source == "velocity"
        assert expression.depth == 1
        assert expression.units_per_point > 1.0

    def test_nested_depth(self):
        expression = compile_expression("norm(curl(curl(velocity)))")
        assert expression.depth == 2

    def test_grad_of_scalar(self):
        expression = compile_expression("norm(grad(pressure))")
        assert expression.source == "pressure"
        assert expression.source_components == 1

    def test_syntax_errors(self):
        for bad in ("norm(curl(velocity)", "norm curl velocity", "", "1 +"):
            with pytest.raises(ExpressionError):
                compile_expression(bad)

    def test_type_errors(self):
        with pytest.raises(ExpressionError):
            compile_expression("curl(pressure)")  # scalar into curl
        with pytest.raises(ExpressionError):
            compile_expression("abs(velocity)")  # vector into abs
        with pytest.raises(ExpressionError):
            compile_expression("curl(velocity)")  # vector result
        with pytest.raises(ExpressionError):
            compile_expression("velocity + velocity")

    def test_unknown_names(self):
        with pytest.raises(ExpressionError):
            compile_expression("norm(curl(vorticity))")
        with pytest.raises(ExpressionError):
            compile_expression("enstrophy(velocity)")

    def test_constant_rejected(self):
        with pytest.raises(ExpressionError):
            compile_expression("1 + 2")

    def test_multiple_sources_rejected(self):
        with pytest.raises(ExpressionError):
            compile_expression("norm(velocity) + norm(magnetic)")

    def test_raw_scalar_allowed(self):
        expression = compile_expression("abs(pressure)")
        assert expression.depth == 0


class TestEvaluation:
    def test_matches_builtin_vorticity(self, velocity):
        norm, derived = evaluate("norm(curl(velocity))", velocity)
        builtin = default_registry().get("vorticity")
        block = padded(velocity, builtin.halo(4))
        expected = builtin.norm(block, 0.5, 4)
        assert norm.shape == (16, 16, 16)
        assert np.allclose(norm, expected, atol=1e-10)

    def test_matches_builtin_q(self, velocity):
        norm, _ = evaluate("abs(q(velocity))", velocity)
        builtin = default_registry().get("q_criterion")
        block = padded(velocity, builtin.halo(4))
        assert np.allclose(norm, builtin.norm(block, 0.5, 4), atol=1e-10)

    def test_scaling_literal(self, velocity):
        half_norm, _ = evaluate("norm(curl(velocity)) * 0.5", velocity)
        full_norm, _ = evaluate("norm(curl(velocity))", velocity)
        assert np.allclose(half_norm, 0.5 * full_norm, atol=1e-12)

    def test_sum_of_invariants(self, velocity):
        combined, _ = evaluate("abs(q(velocity)) + abs(r(velocity))", velocity)
        q, _ = evaluate("abs(q(velocity))", velocity)
        r, _ = evaluate("abs(r(velocity))", velocity)
        assert np.allclose(combined, q + r, atol=1e-10)

    def test_divergence_of_solenoidal_is_small(self):
        from repro.simulation import solenoidal_field

        field = solenoidal_field(16, seed=1, dtype=np.float64)
        norm, _ = evaluate("abs(div(velocity))", field, spacing=2 * np.pi / 16, order=8)
        vorticity, _ = evaluate(
            "norm(curl(velocity))", field, spacing=2 * np.pi / 16, order=8
        )
        assert norm.mean() < 0.1 * vorticity.mean()

    def test_nested_curl_halo(self, velocity):
        """curl(curl(v)) needs a doubled halo and produces finite values."""
        norm, derived = evaluate("norm(curl(curl(velocity)))", velocity)
        assert derived.halo(4) == 2 * kernel_half_width(4)
        assert np.isfinite(norm).all()

    def test_grad_pressure(self):
        rng = np.random.default_rng(5)
        pressure = rng.normal(size=(16, 16, 16, 1))
        norm, _ = evaluate("norm(grad(pressure))", pressure)
        assert norm.shape == (16, 16, 16)
        assert (norm >= 0).all()


class TestEndToEnd:
    def test_expression_field_in_cluster_query(self, small_mhd):
        """An expression field thresholds identically to its builtin twin."""
        from repro.cluster import build_cluster

        registry = default_registry()
        registry.register_expression("my_vorticity", "norm(curl(velocity))")
        mediator = build_cluster(small_mhd, nodes=2, registry=registry)

        builtin = mediator.threshold(
            ThresholdQuery("mhd", "vorticity", 0, 3.0), use_cache=False
        )
        custom = mediator.threshold(
            ThresholdQuery("mhd", "my_vorticity", 0, 3.0), use_cache=False
        )
        assert np.array_equal(builtin.zindexes, custom.zindexes)
        assert np.allclose(builtin.values, custom.values, atol=1e-6)

    def test_registry_register_expression_rejects_duplicates(self):
        registry = default_registry()
        registry.register_expression("x1", "abs(pressure)")
        with pytest.raises(ValueError):
            registry.register_expression("x1", "abs(pressure)")

    def test_expression_field_is_cacheable(self, small_mhd):
        from repro.cluster import build_cluster

        registry = default_registry()
        registry.register_expression("current_like", "norm(curl(magnetic))")
        mediator = build_cluster(small_mhd, nodes=2, registry=registry)
        query = ThresholdQuery("mhd", "current_like", 0, 3.0)
        first = mediator.threshold(query)
        second = mediator.threshold(query)
        assert second.cache_hits == 2
        assert np.array_equal(first.zindexes, second.zindexes)
