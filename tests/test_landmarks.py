"""Tests for the landmark database (paper §7 future work)."""

import numpy as np
import pytest

from repro.core import ThresholdQuery
from repro.core.landmarks import LandmarkDatabase
from repro.costmodel import Category
from repro.costmodel.devices import SsdSpec
from repro.grid import Box
from repro.storage import Database, StorageDevice
from tests.test_core_threshold import ground_truth_norm


@pytest.fixture()
def landmark_host(mhd_cluster):
    """A landmark database hosted next to node 0's cache tables."""
    return LandmarkDatabase(mhd_cluster.nodes[0].db)


@pytest.fixture()
def recorded(small_mhd, mhd_cluster, landmark_host):
    norm = ground_truth_norm(small_mhd, "vorticity", 0)
    threshold = float(np.quantile(norm, 0.995))
    query = ThresholdQuery("mhd", "vorticity", 0, threshold)
    result = mhd_cluster.threshold(query, use_cache=False)
    ids = landmark_host.record_threshold_result(
        query, result, domain_side=32, min_size=2
    )
    return landmark_host, query, result, ids


class TestRecording:
    def test_records_clusters(self, recorded):
        host, query, result, ids = recorded
        assert len(ids) >= 1
        assert host.count() == len(ids)

    def test_empty_result_records_nothing(self, landmark_host):
        from repro.costmodel import CostLedger
        from repro.core.query import ThresholdResult

        query = ThresholdQuery("mhd", "vorticity", 0, 1e9)
        result = ThresholdResult(
            np.empty(0, np.uint64), np.empty(0, np.float64), CostLedger()
        )
        assert landmark_host.record_threshold_result(query, result, 32) == []

    def test_landmark_statistics_consistent(self, small_mhd, recorded):
        host, query, result, _ = recorded
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        for lm in host.landmarks("mhd", "vorticity"):
            x, y, z = lm.peak_location
            assert norm[x, y, z] == pytest.approx(lm.peak_value, abs=1e-5)
            assert lm.box.contains_point(lm.peak_location)
            assert lm.threshold == pytest.approx(query.threshold)
            assert lm.mean_value <= lm.peak_value + 1e-9
            assert lm.point_count >= 2

    def test_peak_is_global_max(self, recorded):
        host, _, result, _ = recorded
        best = host.most_intense("mhd", "vorticity", k=1)[0]
        assert best.peak_value == pytest.approx(result.values.max(), abs=1e-9)


class TestQuerying:
    def test_sorted_by_peak(self, recorded):
        host = recorded[0]
        landmarks = host.landmarks("mhd", "vorticity")
        peaks = [lm.peak_value for lm in landmarks]
        assert peaks == sorted(peaks, reverse=True)

    def test_filter_by_timestep(self, recorded):
        host = recorded[0]
        assert host.landmarks(timestep=0) == host.landmarks("mhd", "vorticity")
        assert host.landmarks(timestep=1) == []

    def test_filter_by_min_peak(self, recorded):
        host = recorded[0]
        all_landmarks = host.landmarks("mhd", "vorticity")
        cut = all_landmarks[0].peak_value
        assert len(host.landmarks("mhd", "vorticity", min_peak=cut)) == 1

    def test_filter_by_field(self, recorded):
        host = recorded[0]
        assert host.landmarks("mhd", "q_criterion") == []

    def test_in_region(self, recorded):
        host = recorded[0]
        everywhere = host.in_region(Box.cube(32))
        assert len(everywhere) == host.count()
        best = everywhere[0]
        nowhere = [
            lm
            for lm in host.in_region(best.box)
            if lm.landmark_id == best.landmark_id
        ]
        assert nowhere  # the landmark intersects its own box

    def test_forget(self, recorded):
        host, _, _, ids = recorded
        assert host.forget(ids[0]) is True
        assert host.forget(ids[0]) is False
        assert host.count() == len(ids) - 1


class TestStandaloneHost:
    def test_works_on_dedicated_database(self):
        db = Database("landmarks")
        db.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))
        host = LandmarkDatabase(db)
        assert host.count() == 0
