"""Smoke tests: the shipped examples run to completion.

Only the two fastest examples run in the default suite; the full set is
exercised manually (`python examples/<name>.py`) and by the benchmarks.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.parametrize("name", ["quickstart.py", "webservice_demo.py"])
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_all_examples_exist_and_are_documented():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3  # the deliverable minimum (we ship more)
    for script in scripts:
        text = script.read_text()
        assert text.startswith('"""'), f"{script.name} lacks a docstring"
        assert "def main" in text
