"""Tests for the bulk table operations behind the columnar fast path.

Covers :meth:`Table.insert_many` (all-or-nothing validation, single
WAL record, crash recovery, abort rollback),
:meth:`Table.scan_column_batches` (equivalence with :meth:`Table.scan`,
charging), and :meth:`BPlusTree.insert_sorted_run`.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import Category, CostLedger
from repro.costmodel.devices import SsdSpec
from repro.storage import (
    Column,
    ColumnType,
    Database,
    DuplicateKeyError,
    ForeignKey,
    ForeignKeyError,
    SchemaError,
    StorageDevice,
    TableSchema,
)
from repro.storage.btree import BPlusTree
from repro.storage.wal import WalKind, WriteAheadLog, recover


def schemas():
    parent = TableSchema(
        "info",
        (
            Column("id", ColumnType.INTEGER),
            Column("label", ColumnType.TEXT, nullable=True),
        ),
        primary_key=("id",),
    )
    child = TableSchema(
        "data",
        (
            Column("info_id", ColumnType.INTEGER),
            Column("seq", ColumnType.INTEGER),
            Column("payload", ColumnType.BLOB, nullable=True),
        ),
        primary_key=("info_id", "seq"),
        indexes={"by_info": ("info_id",)},
        foreign_keys=(ForeignKey(("info_id",), "info", cascade=True),),
    )
    return [(parent, "ssd"), (child, "ssd")]


def make_db(wal=None):
    db = Database("bulk", wal=wal)
    db.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))
    for schema, device in schemas():
        db.create_table(schema, device=device)
    return db


def data_rows(n, info_id=1, start=0):
    return [
        {"info_id": info_id, "seq": start + i, "payload": bytes([i % 251])}
        for i in range(n)
    ]


class TestInsertMany:
    def test_rows_visible_and_counted(self):
        db = make_db()
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "a"})
            n = db.table("data").insert_many(txn, data_rows(10))
        assert n == 10
        with db.transaction() as txn:
            rows = list(db.table("data").scan(txn))
        assert [r["seq"] for r in rows] == list(range(10))
        assert db.table("data").bulk_insert_rows == 10
        assert db.storage_stats()["bulk_insert_rows"] >= 10.0

    def test_empty_batch_is_noop(self):
        db = make_db()
        with db.transaction() as txn:
            assert db.table("data").insert_many(txn, []) == 0

    def test_single_wal_record(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "a"})
            db.table("data").insert_many(txn, data_rows(100))
        kinds = [r.kind for r in wal.records()]
        assert kinds.count(WalKind.INSERT_MANY) == 1
        assert WalKind.INSERT not in [
            r.kind for r in wal.records() if r.table == "data"
        ]

    def test_recovery_replays_batch(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "a"})
            db.table("data").insert_many(txn, data_rows(25))
        replica = recover(
            wal, schemas(),
            [StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP)],
        )
        with replica.transaction() as txn:
            rows = list(replica.table("data").scan(txn))
        assert len(rows) == 25
        assert rows[0]["payload"] == b"\x00"

    def test_in_batch_duplicate_leaves_table_untouched(self):
        db = make_db()
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "a"})
        bad = data_rows(5) + data_rows(1)  # seq 0 repeats
        with db.transaction() as txn:
            with pytest.raises(DuplicateKeyError):
                db.table("data").insert_many(txn, bad)
        with db.transaction() as txn:
            assert db.table("data").count(txn) == 0

    def test_visible_duplicate_leaves_table_untouched(self):
        db = make_db()
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "a"})
            db.table("data").insert(txn, data_rows(1)[0])
        with db.transaction() as txn:
            with pytest.raises(DuplicateKeyError):
                db.table("data").insert_many(txn, data_rows(5))
        with db.transaction() as txn:
            assert db.table("data").count(txn) == 1

    def test_missing_parent_leaves_table_untouched(self):
        db = make_db()
        with db.transaction() as txn:
            with pytest.raises(ForeignKeyError):
                db.table("data").insert_many(txn, data_rows(3, info_id=9))
        with db.transaction() as txn:
            assert db.table("data").count(txn) == 0

    def test_abort_rolls_back_whole_batch(self):
        """Crash consistency: an aborted bulk insert leaves no partial rows."""
        db = make_db()
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "a"})
        txn = db.begin()
        db.table("data").insert_many(txn, data_rows(50))
        txn.abort()
        with db.transaction() as check:
            assert db.table("data").count(check) == 0
            assert list(db.table("data").lookup(check, "by_info", (1,))) == []
        # The table still accepts the same batch afterwards.
        with db.transaction() as txn:
            assert db.table("data").insert_many(txn, data_rows(50)) == 50

    def test_uncommitted_batch_invisible_to_concurrent_txn(self):
        db = make_db()
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "a"})
        writer = db.begin()
        db.table("data").insert_many(writer, data_rows(10))
        reader = db.begin()
        try:
            assert db.table("data").count(reader) == 0
        finally:
            reader.abort()
            writer.commit()
        with db.transaction() as txn:
            assert db.table("data").count(txn) == 10

    def test_matches_row_at_a_time_inserts(self):
        bulk, serial = make_db(), make_db()
        rows = data_rows(200)
        random.Random(7).shuffle(rows)
        for db in (bulk, serial):
            with db.transaction() as txn:
                db.table("info").insert(txn, {"id": 1, "label": "a"})
        with bulk.transaction() as txn:
            bulk.table("data").insert_many(txn, rows)
        with serial.transaction() as txn:
            for row in rows:
                serial.table("data").insert(txn, row)
        with bulk.transaction() as tb, serial.transaction() as ts:
            assert list(bulk.table("data").scan(tb)) == list(
                serial.table("data").scan(ts)
            )


class TestScanColumnBatches:
    def make_filled(self, n=300):
        db = make_db()
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "a"})
            db.table("data").insert_many(txn, data_rows(n))
        return db

    def test_matches_scan(self):
        db = self.make_filled()
        with db.transaction() as txn:
            expect = [
                (r["seq"], r["payload"]) for r in db.table("data").scan(txn)
            ]
            got = []
            for seqs, payloads in db.table("data").scan_column_batches(
                txn, ["seq", "payload"], batch_rows=64
            ):
                assert len(seqs) <= 64
                got.extend(zip(seqs, payloads))
        assert got == expect

    def test_range_bounds_match_scan(self):
        db = self.make_filled()
        lo, hi = (1, 50), (1, 200)
        with db.transaction() as txn:
            expect = [r["seq"] for r in db.table("data").scan(txn, lo, hi)]
            got = [
                s
                for (seqs,) in db.table("data").scan_column_batches(
                    txn, ["seq"], lo, hi
                )
                for s in seqs
            ]
        assert got == expect

    def test_unknown_column_raises(self):
        db = self.make_filled(5)
        with db.transaction() as txn:
            with pytest.raises(SchemaError):
                list(db.table("data").scan_column_batches(txn, ["nope"]))

    def test_charge_false_skips_io_charging(self):
        db = self.make_filled()
        ledger = CostLedger()
        with db.transaction(ledger) as txn:
            for _ in db.table("data").scan_column_batches(
                txn, ["seq"], charge=False
            ):
                pass
        assert ledger.total == 0.0

    def test_charging_matches_scan(self):
        db = self.make_filled()
        charged, reference = CostLedger(), CostLedger()
        with db.transaction(charged) as txn:
            for _ in db.table("data").scan_column_batches(txn, ["seq"]):
                pass
        with db.transaction(reference) as txn:
            for _ in db.table("data").scan(txn):
                pass
        assert charged.total == pytest.approx(reference.total)


class TestInsertSortedRun:
    def test_requires_ascending(self):
        tree = BPlusTree()
        with pytest.raises(ValueError):
            tree.insert_sorted_run([((2,), "b"), ((1,), "a")])

    def test_skips_existing_keys(self):
        tree = BPlusTree()
        tree.insert((5,), "old")
        added = tree.insert_sorted_run([((4,), "x"), ((5,), "new"), ((6,), "y")])
        assert added == 2
        assert tree.get((5,)) == "old"
        tree.check_invariants()

    @settings(max_examples=50, deadline=None)
    @given(
        preload=st.lists(st.integers(0, 500), unique=True, max_size=80),
        run=st.lists(st.integers(0, 500), unique=True, max_size=200),
    )
    def test_matches_point_inserts(self, preload, run):
        tree = BPlusTree(order=8)
        reference = BPlusTree(order=8)
        for trees in (tree, reference):
            for k in preload:
                trees.insert((k,), -k)
        added = tree.insert_sorted_run([((k,), k) for k in sorted(run)])
        for k in sorted(run):
            reference.insert((k,), k, replace=False)
        assert added == len(set(run) - set(preload))
        assert list(tree.items()) == list(reference.items())
        tree.check_invariants()


class TestNodeSpans:
    def test_spans_cover_range_in_order(self):
        from repro.cluster import MortonPartitioner
        from repro.morton import MortonRange

        part = MortonPartitioner(32, 4)
        rng = MortonRange(100, 32**3 - 7)
        spans = part.node_spans(rng)
        assert spans[0][1].start == rng.start
        assert spans[-1][1].stop == rng.stop
        assert [node for node, _ in spans] == sorted({node for node, _ in spans})
        total = 0
        prev_stop = rng.start
        for node, piece in spans:
            assert piece.start == prev_stop
            assert part.node_of_code(piece.start) == node
            assert part.node_of_code(piece.stop - 1) == node
            prev_stop = piece.stop
            total += len(piece)
        assert total == len(rng)

    def test_empty_and_out_of_domain(self):
        from repro.cluster import MortonPartitioner
        from repro.morton import MortonRange

        part = MortonPartitioner(16, 2)
        assert part.node_spans(MortonRange(5, 5)) == []
        with pytest.raises(ValueError):
            part.node_spans(MortonRange(0, 16**3 + 1))

    def test_single_node_range_stays_whole(self):
        from repro.cluster import MortonPartitioner
        from repro.morton import MortonRange

        part = MortonPartitioner(16, 8)
        rng = part.node_ranges(3)
        inner = MortonRange(rng.start + 1, rng.stop - 1)
        assert part.node_spans(inner) == [(3, inner)]
