"""End-to-end tests on the channel-flow dataset (the paper's 4th dataset)."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.core import PdfQuery, ThresholdQuery
from repro.fields import curl_periodic
from repro.morton import encode_array
from repro.simulation import channel_dataset


@pytest.fixture(scope="module")
def channel():
    dataset = channel_dataset(side=32, timesteps=2)
    mediator = build_cluster(dataset, nodes=4)
    return dataset, mediator


class TestChannelFlow:
    def test_threshold_matches_ground_truth(self, channel):
        dataset, mediator = channel
        velocity = dataset.field_array("velocity", 0).astype(np.float64)
        norm = np.linalg.norm(
            curl_periodic(velocity, dataset.spec.spacing, 4), axis=-1
        )
        threshold = float(np.quantile(norm, 0.995))
        result = mediator.threshold(
            ThresholdQuery("channel", "vorticity", 0, threshold),
            use_cache=False,
        )
        mask = norm >= threshold
        assert len(result) == mask.sum()
        ix, iy, iz = np.nonzero(mask)
        assert np.array_equal(
            result.zindexes, np.sort(encode_array(ix, iy, iz))
        )

    def test_intense_vorticity_avoids_damped_wall_layer(self, channel):
        """Fluctuations vanish at the walls, so intense events sit inside.

        (The synthetic channel damps fluctuations with a sin(pi*y/L)
        envelope; unlike real channel turbulence it does not grow a
        near-wall vorticity peak — see DESIGN.md's substitution notes.)
        """
        dataset, mediator = channel
        velocity = dataset.field_array("velocity", 0).astype(np.float64)
        norm = np.linalg.norm(
            curl_periodic(velocity, dataset.spec.spacing, 4), axis=-1
        )
        threshold = float(np.quantile(norm, 0.99))
        result = mediator.threshold(
            ThresholdQuery("channel", "vorticity", 0, threshold)
        )
        y = result.coordinates()[:, 1]
        wall_distance = np.minimum(y, 32 - 1 - y)
        assert wall_distance.min() >= 2  # none inside the damped layer

    def test_streamwise_velocity_threshold(self, channel):
        """Raw velocity-norm thresholding picks the channel centre."""
        dataset, mediator = channel
        velocity = dataset.field_array("velocity", 0).astype(np.float64)
        norm = np.linalg.norm(velocity, axis=-1)
        threshold = float(np.quantile(norm, 0.99))
        result = mediator.threshold(
            ThresholdQuery("channel", "velocity", 0, threshold)
        )
        y = result.coordinates()[:, 1]
        centre_distance = np.abs(y - 15.5)
        assert np.median(centre_distance) < 8  # fast fluid mid-channel

    def test_pdf_and_cache_work(self, channel):
        dataset, mediator = channel
        pdf = mediator.pdf(
            PdfQuery("channel", "vorticity", 1, (0.0, 5.0, 10.0))
        )
        assert pdf.total_points == 32**3
        query = ThresholdQuery("channel", "vorticity", 1, 8.0)
        mediator.threshold(query)
        warm = mediator.threshold(query)
        assert warm.cache_hits == len(mediator.nodes)
