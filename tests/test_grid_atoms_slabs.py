"""Tests for atom decomposition and slab partitioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import ATOM_SIDE, Box, atom_box, atom_count, atoms_covering, snap_to_atoms, split_slabs
from repro.grid.atoms import ATOM_VOLUME, atom_code, atom_ranges_covering
from repro.morton import decode, encode


class TestAtoms:
    def test_snap_to_atoms(self):
        box = Box((3, 8, 15), (9, 16, 17))
        assert snap_to_atoms(box) == Box((0, 8, 8), (16, 16, 24))

    def test_atom_box_round_trip(self):
        code = encode(8, 16, 24)
        box = atom_box(code)
        assert box.lo == (8, 16, 24)
        assert box.shape == (ATOM_SIDE,) * 3

    def test_atom_box_rejects_unaligned_code(self):
        with pytest.raises(ValueError):
            atom_box(encode(1, 0, 0))

    def test_atom_count(self):
        assert atom_count(32) == 64

    def test_atom_count_rejects_unaligned_domain(self):
        with pytest.raises(ValueError):
            atom_count(30)

    def test_atoms_covering_full_domain(self):
        codes = list(atoms_covering(Box.cube(16), 16))
        assert len(codes) == atom_count(16)
        assert codes == sorted(codes)

    def test_atoms_covering_sub_box(self):
        # A box inside one atom needs exactly that atom.
        codes = list(atoms_covering(Box((1, 1, 1), (4, 4, 4)), 32))
        assert codes == [0]

    def test_atoms_covering_straddling_box(self):
        codes = set(atoms_covering(Box((6, 6, 6), (10, 10, 10)), 32))
        expected = {
            encode(x, y, z)
            for x in (0, 8)
            for y in (0, 8)
            for z in (0, 8)
        }
        assert codes == expected

    def test_atom_ranges_are_grid_point_scaled(self):
        ranges = atom_ranges_covering(Box.cube(16), 16)
        assert len(ranges) == 1
        assert len(ranges[0]) == 16**3

    def test_atom_code(self):
        assert atom_code(9, 17, 25) == encode(8, 16, 24)

    @settings(max_examples=40, deadline=None)
    @given(st.tuples(*[st.integers(0, 31)] * 3), st.tuples(*[st.integers(1, 16)] * 3))
    def test_covering_atoms_exactly_cover_box(self, lo, shape):
        side = 64
        hi = tuple(min(l + s, side) for l, s in zip(lo, shape))
        box = Box(lo, hi)
        codes = set(atoms_covering(box, side))
        # Every grid point of the box lies in some listed atom...
        for x, y, z in box.iter_points():
            assert atom_code(x, y, z) in codes
        # ...and every listed atom intersects the box.
        for code in codes:
            assert atom_box(code).intersection(box) is not None


class TestSlabs:
    def test_single_part_returns_box(self):
        box = Box.cube(32)
        assert split_slabs(box, 1) == [box]

    def test_slabs_partition_box(self):
        box = Box.cube(64)
        slabs = split_slabs(box, 4)
        assert len(slabs) == 4
        assert sum(s.volume for s in slabs) == box.volume
        for a, b in zip(slabs, slabs[1:]):
            assert a.intersection(b) is None

    def test_cuts_along_longest_axis(self):
        box = Box((0, 0, 0), (8, 64, 8))
        slabs = split_slabs(box, 2)
        assert all(s.shape[0] == 8 and s.shape[2] == 8 for s in slabs)

    def test_alignment(self):
        slabs = split_slabs(Box.cube(64), 3)
        for slab in slabs:
            assert all(l % ATOM_SIDE == 0 for l in slab.lo)

    def test_thin_box_yields_fewer_slabs(self):
        slabs = split_slabs(Box.cube(8), 4)
        assert len(slabs) == 1

    def test_empty_box(self):
        assert split_slabs(Box((0, 0, 0), (0, 4, 4)), 4) == []

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            split_slabs(Box.cube(8), 0)
        with pytest.raises(ValueError):
            split_slabs(Box.cube(8), 2, align=0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 8), st.integers(1, 16))
    def test_partition_property(self, parts, blocks):
        box = Box((0, 0, 0), (8, 8, 8 * blocks))
        slabs = split_slabs(box, parts)
        assert sum(s.volume for s in slabs) == box.volume
        assert 1 <= len(slabs) <= parts
