"""Property tests for the packed point-chunk format and chunked cache.

The chunked ``cacheData`` layout must be *observationally identical* to
the seed's row-per-point storage: same points, same values, same
Morton ordering, same box/threshold filtering, same byte accounting.
These tests pin that equivalence with randomized point sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pointset
from repro.core.cache import SemanticCache
from repro.costmodel import Category
from repro.costmodel.devices import HddArraySpec, SsdSpec
from repro.grid import Box
from repro.morton import MortonRange, decode_array, encode_array
from repro.morton.ranges import box_to_ranges
from repro.storage import Database, StorageDevice

SIDE = 16
BOX = Box((0, 0, 0), (SIDE,) * 3)


def make_cache(capacity_bytes=1 << 20, point_record_bytes=20):
    db = Database("pointset")
    db.add_device(StorageDevice("hdd", HddArraySpec(), Category.IO))
    db.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))
    return db, SemanticCache(db, capacity_bytes, point_record_bytes)


point_sets = st.builds(
    lambda codes, seed: (
        np.array(sorted(codes), dtype=np.uint64),
        np.random.default_rng(seed).uniform(0.0, 20.0, len(codes)),
    ),
    st.sets(st.integers(0, SIDE**3 - 1), max_size=200),
    st.integers(0, 2**32 - 1),
)


class TestPackChunks:
    @settings(max_examples=60, deadline=None)
    @given(points=point_sets, chunk_points=st.integers(1, 64))
    def test_round_trip_restores_sorted_points(self, points, chunk_points):
        zindexes, values = points
        shuffle = np.random.default_rng(0).permutation(len(zindexes))
        chunks = pointset.pack_chunks(
            zindexes[shuffle], values[shuffle], chunk_points=chunk_points
        )
        assert all(c.count <= chunk_points for c in chunks)
        assert [c.seq for c in chunks] == list(range(len(chunks)))
        z_parts, v_parts = [], []
        for chunk in chunks:
            z, v = pointset.chunk_arrays(chunk.zblob, chunk.vblob)
            assert chunk.count == len(z) == len(v)
            if len(z):
                assert chunk.z_lo == int(z[0]) and chunk.z_hi == int(z[-1])
                assert chunk.value_max == pytest.approx(float(v.max()))
            z_parts.append(z)
            v_parts.append(v)
        got_z = np.concatenate(z_parts) if z_parts else np.empty(0, np.uint64)
        got_v = np.concatenate(v_parts) if v_parts else np.empty(0)
        assert np.array_equal(got_z, zindexes)
        assert np.allclose(got_v, values)

    def test_duplicate_zindex_rejected(self):
        with pytest.raises(ValueError):
            pointset.pack_chunks(
                np.array([3, 3], np.uint64), np.array([1.0, 2.0])
            )

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            pointset.pack_chunks(np.array([1], np.uint64), np.array([1.0, 2.0]))


class TestChunkPruning:
    @settings(max_examples=60, deadline=None)
    @given(
        bounds=st.lists(
            st.tuples(st.integers(0, 4000), st.integers(0, 400)),
            max_size=20,
        ),
        box_lo=st.tuples(*[st.integers(0, SIDE - 2)] * 3),
    )
    def test_matches_brute_force(self, bounds, box_lo):
        z_lo = np.array([lo for lo, _ in bounds], dtype=np.uint64)
        z_hi = np.array([lo + span for lo, span in bounds], dtype=np.uint64)
        box = Box(box_lo, tuple(c + 2 for c in box_lo))
        ranges = box_to_ranges(box.lo, box.hi, SIDE)
        got = pointset.chunks_overlapping_ranges(z_lo, z_hi, ranges)
        expect = [
            any(lo < r.stop and hi >= r.start for r in ranges)
            for lo, hi in zip(z_lo.tolist(), z_hi.tolist())
        ]
        assert got.tolist() == expect

    def test_no_ranges_prunes_everything(self):
        mask = pointset.chunks_overlapping_ranges(
            np.array([1], np.uint64), np.array([5], np.uint64), []
        )
        assert not mask.any()


class TestMergeSortedRuns:
    @settings(max_examples=60, deadline=None)
    @given(
        runs=st.lists(point_sets, max_size=5),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_matches_stable_argsort_of_concatenation(self, runs, seed):
        # Shuffle each run so some are internally unsorted — raw scans
        # emit coordinate order, not curve order.
        rng = np.random.default_rng(seed)
        shuffled = []
        for z, v in runs:
            perm = rng.permutation(len(z))
            shuffled.append((z[perm], v[perm]))
        got_z, got_v = pointset.merge_sorted_runs(shuffled)
        all_z = np.concatenate([z for z, _ in shuffled]) if runs else np.empty(0, np.uint64)
        all_v = np.concatenate([v for _, v in shuffled]) if runs else np.empty(0)
        order = np.argsort(all_z, kind="stable")
        assert np.array_equal(got_z, all_z[order].astype(np.uint64))
        assert np.allclose(got_v, all_v[order])

    def test_single_unsorted_run_is_sorted(self):
        # Regression: the single-run path must not skip the sort check.
        z = np.array([9, 2, 5], np.uint64)
        v = np.array([1.0, 2.0, 3.0])
        got_z, got_v = pointset.merge_sorted_runs([(z, v)])
        assert got_z.tolist() == [2, 5, 9]
        assert got_v.tolist() == [2.0, 3.0, 1.0]

    def test_sorted_runs_concatenate_without_copy_ordering(self):
        a = (np.array([1, 2], np.uint64), np.array([1.0, 2.0]))
        b = (np.array([3, 4], np.uint64), np.array([3.0, 4.0]))
        got_z, _ = pointset.merge_sorted_runs([a, b])
        assert got_z.tolist() == [1, 2, 3, 4]


class TestCacheEquivalence:
    """Chunked store/lookup behaves point-for-point like row-per-point."""

    @settings(max_examples=40, deadline=None)
    @given(
        points=point_sets,
        threshold=st.floats(0.0, 20.0),
        sub_lo=st.tuples(*[st.integers(0, SIDE - 4)] * 3),
        span=st.integers(2, 4),
    )
    def test_lookup_matches_reference_filter(
        self, points, threshold, sub_lo, span
    ):
        zindexes, values = points
        db, cache = make_cache()
        with db.transaction() as txn:
            cache.store(txn, "mhd", "f", 0, BOX, 0.0, zindexes, values)
        sub = Box(sub_lo, tuple(min(c + span, SIDE) for c in sub_lo))
        with db.transaction() as txn:
            lookup = cache.lookup(txn, "mhd", "f", 0, sub, threshold)
        assert lookup.hit

        # Reference semantics: the seed filtered per-point rows by box
        # membership and value >= threshold, returning Morton order.
        x, y, z = decode_array(zindexes)
        inside = (
            (x >= sub.lo[0]) & (x < sub.hi[0])
            & (y >= sub.lo[1]) & (y < sub.hi[1])
            & (z >= sub.lo[2]) & (z < sub.hi[2])
        )
        keep = inside & (values >= threshold)
        assert np.array_equal(lookup.zindexes, zindexes[keep])
        assert np.allclose(lookup.values, values[keep])
        assert bool(np.all(np.diff(lookup.zindexes.astype(np.int64)) > 0))

    @settings(max_examples=20, deadline=None)
    @given(points=point_sets)
    def test_byte_accounting_is_per_point(self, points):
        zindexes, values = points
        db, cache = make_cache(point_record_bytes=20)
        with db.transaction() as txn:
            cache.store(txn, "mhd", "f", 0, BOX, 0.0, zindexes, values)
        with db.transaction() as txn:
            assert cache.used_bytes(txn) == 20 * len(zindexes)
            assert cache.data_point_count(txn) == len(zindexes)

    def test_pruning_skips_chunks_and_counts(self, monkeypatch):
        # Force small chunks so the two curve-distant clusters land in
        # different chunk rows.
        packer = pointset.pack_chunks
        monkeypatch.setattr(
            pointset, "pack_chunks",
            lambda z, v: packer(z, v, chunk_points=32),
        )
        db, cache = make_cache()
        lo_z = np.arange(0, 32, dtype=np.uint64)
        hi_z = np.arange(SIDE**3 - 32, SIDE**3, dtype=np.uint64)
        zindexes = np.concatenate([lo_z, hi_z])
        values = np.full(len(zindexes), 5.0)
        with db.transaction() as txn:
            cache.store(txn, "mhd", "f", 0, BOX, 0.0, zindexes, values)
            assert db.table("cacheData").count(txn) == 2
        before = cache.stats.snapshot()["chunks_pruned"]
        sub = Box((0, 0, 0), (2, 2, 2))
        with db.transaction() as txn:
            lookup = cache.lookup(txn, "mhd", "f", 0, sub, 0.0)
        assert lookup.hit
        assert set(lookup.zindexes.tolist()) <= set(lo_z.tolist())
        assert cache.stats.snapshot()["chunks_pruned"] == before + 1


class TestAbortLeavesNoPartialChunks:
    def test_store_abort_rolls_back_info_and_chunks(self):
        db, cache = make_cache()
        zindexes = np.arange(100, dtype=np.uint64)
        values = np.linspace(1.0, 2.0, 100)
        txn = db.begin()
        cache.store(txn, "mhd", "f", 0, BOX, 0.0, zindexes, values)
        txn.abort()
        with db.transaction() as check:
            assert db.table("cacheInfo").count(check) == 0
            assert db.table("cacheData").count(check) == 0
            assert cache.data_point_count(check) == 0
            lookup = cache.lookup(check, "mhd", "f", 0, BOX, 0.0)
        assert not lookup.hit
