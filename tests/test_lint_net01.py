"""NET01 (network deadline discipline) checker tests."""

from repro.lint.checkers.net01 import NetDeadlines

from tests.lint_helpers import load, run_checker


def test_clean_fixture_passes():
    source = load("net01_good.py", "repro.net.fixture_good")
    assert run_checker(NetDeadlines(), source) == []


def test_bad_fixture_reports_each_violation():
    source = load("net01_bad.py", "repro.net.fixture_bad")
    diags = run_checker(NetDeadlines(), source)
    assert len(diags) == 5
    messages = "\n".join(d.message for d in diags)
    assert "settimeout(None)" in messages
    assert "create_connection without timeout=" in messages
    assert "bare .connect()" in messages
    assert ".recv() in read_forever()" in messages
    assert ".accept() in accept_forever()" in messages
    assert all(d.code == "NET01" for d in diags)


def test_scope_is_the_net_package_only():
    checker = NetDeadlines()
    assert checker.applies("repro.net.client")
    assert checker.applies("repro.net.server")
    assert not checker.applies("repro.cluster.mediator")
    assert not checker.applies("repro.obs.clock")
    assert not checker.applies("socketserver")


def test_own_net_package_is_clean():
    """The shipped transport tier must satisfy its own lint rule."""
    from pathlib import Path

    from repro.lint import SourceFile

    net_dir = Path(__file__).parent.parent / "src" / "repro" / "net"
    checker = NetDeadlines()
    for path in sorted(net_dir.glob("*.py")):
        module = f"repro.net.{path.stem}"
        if not checker.applies(module):
            continue
        source = SourceFile(path, module)
        diags = [
            d
            for d in checker.check(source)
            if not source.suppressed(d.code, d.line)
        ]
        assert diags == [], f"{path.name}: {[d.message for d in diags]}"
