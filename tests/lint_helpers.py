"""Shared plumbing for the turblint checker tests.

Fixture files live under ``tests/fixtures/lint/``; they are loaded with a
*synthetic* module name so each lands inside the checker's scope (the
paths themselves resolve to bare stems, which no scoped checker covers).
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import Checker, Diagnostic, SourceFile
from repro.lint.program import Program

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def load(name: str, module: str) -> SourceFile:
    """Load ``tests/fixtures/lint/<name>`` under a synthetic module name."""
    return SourceFile(FIXTURES / name, module)


def run_checker(
    checker: Checker, *sources: SourceFile
) -> list[Diagnostic]:
    """Run one checker over the sources, including its finish() pass."""
    diagnostics: list[Diagnostic] = []
    for source in sources:
        assert checker.applies(source.module), (
            f"{checker.code} does not apply to {source.module}; "
            "fix the test's synthetic module name"
        )
        diagnostics.extend(
            diag
            for diag in checker.check(source)
            if not source.suppressed(diag.code, diag.line)
        )
    diagnostics.extend(checker.finish())
    return diagnostics


def run_program_checker(
    checker: Checker, *sources: SourceFile
) -> list[Diagnostic]:
    """Run a whole-program checker over the sources as one Program.

    Mirrors the CLI's whole-program pass, including suppression
    filtering keyed on the diagnostic's path.
    """
    by_path = {str(source.path): source for source in sources}
    diagnostics = []
    for diag in checker.check_program(Program(sources)):
        source = by_path.get(diag.path)
        if source is not None and source.suppressed(diag.code, diag.line):
            continue
        diagnostics.append(diag)
    return diagnostics
