"""Shared plumbing for the turblint checker tests.

Fixture files live under ``tests/fixtures/lint/``; they are loaded with a
*synthetic* module name so each lands inside the checker's scope (the
paths themselves resolve to bare stems, which no scoped checker covers).
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import Checker, Diagnostic, SourceFile

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def load(name: str, module: str) -> SourceFile:
    """Load ``tests/fixtures/lint/<name>`` under a synthetic module name."""
    return SourceFile(FIXTURES / name, module)


def run_checker(
    checker: Checker, *sources: SourceFile
) -> list[Diagnostic]:
    """Run one checker over the sources, including its finish() pass."""
    diagnostics: list[Diagnostic] = []
    for source in sources:
        assert checker.applies(source.module), (
            f"{checker.code} does not apply to {source.module}; "
            "fix the test's synthetic module name"
        )
        diagnostics.extend(
            diag
            for diag in checker.check(source)
            if not source.suppressed(diag.code, diag.line)
        )
    diagnostics.extend(checker.finish())
    return diagnostics
