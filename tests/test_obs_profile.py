"""Tests for the sampling profiler and its span keying."""

import threading

from repro.obs import clock, tracing
from repro.obs.profile import SamplingProfiler


def burn(seconds: float) -> None:
    deadline = clock.now() + seconds
    while clock.now() < deadline:
        pass


class TestSampling:
    def test_collects_samples_while_running(self):
        with SamplingProfiler(interval=0.001, track_spans=False) as profiler:
            burn(0.05)
        assert profiler.samples > 0
        collapsed = profiler.collapsed()
        assert collapsed
        # Every key is a root-first semicolon-joined stack.
        assert all(";" in stack or ":" in stack for stack in collapsed)

    def test_burn_frame_appears_in_stacks(self):
        with SamplingProfiler(interval=0.001, track_spans=False) as profiler:
            burn(0.05)
        assert any(
            "test_obs_profile:burn" in stack
            for stack in profiler.collapsed()
        )

    def test_stop_is_idempotent_and_restartable(self):
        profiler = SamplingProfiler(interval=0.001, track_spans=False)
        profiler.start().start()
        burn(0.02)
        profiler.stop()
        profiler.stop()
        assert not profiler.running
        count = profiler.samples
        profiler.start()
        burn(0.02)
        profiler.stop()
        assert profiler.samples >= count

    def test_clear_drops_samples_but_keeps_running(self):
        profiler = SamplingProfiler(interval=0.001, track_spans=False).start()
        try:
            burn(0.02)
            profiler.clear()
            assert profiler.samples == 0
        finally:
            profiler.stop()

    def test_rejects_non_positive_interval(self):
        try:
            SamplingProfiler(interval=0.0)
        except ValueError:
            pass
        else:  # pragma: no cover - the guard must fire
            raise AssertionError("interval=0 must be rejected")

    def test_own_sampler_thread_is_never_sampled(self):
        with SamplingProfiler(interval=0.001, track_spans=False) as profiler:
            burn(0.05)
        assert not any(
            "obs-profiler" in stack or "_sample_loop" in stack
            for stack in profiler.collapsed()
        )


class TestSpanKeying:
    def test_samples_key_to_the_open_span(self):
        collector = tracing.install(tracing.TraceCollector())
        try:
            with SamplingProfiler(interval=0.001) as profiler:
                with tracing.span("work.burn", trace_id="q_prof") as span:
                    burn(0.05)
            by_span = profiler.collapsed_by_span()
            key = f"q_prof/{span.span_id}:work.burn"
            assert key in by_span
            assert profiler.for_trace("q_prof")
            assert profiler.for_trace("q_other") == {}
        finally:
            tracing.uninstall()
        assert collector.trace("q_prof")

    def test_samples_outside_spans_are_unattributed(self):
        with SamplingProfiler(interval=0.001) as profiler:
            burn(0.05)
        by_span = profiler.collapsed_by_span()
        assert set(by_span) == {""}

    def test_render_by_span_prefixes_every_line(self):
        tracing.install(tracing.TraceCollector())
        try:
            with SamplingProfiler(interval=0.001) as profiler:
                with tracing.span("work.burn", trace_id="q_prof"):
                    burn(0.05)
            text = profiler.render_collapsed(by_span=True)
        finally:
            tracing.uninstall()
        lines = [line for line in text.splitlines() if line]
        assert lines
        for line in lines:
            label, _, rest = line.partition(";")
            assert label == "<unattributed>" or label.startswith("q_prof/")
            assert rest.rsplit(" ", 1)[-1].isdigit()

    def test_write_produces_flamegraph_input(self, tmp_path):
        with SamplingProfiler(interval=0.001, track_spans=False) as profiler:
            burn(0.03)
        target = profiler.write(tmp_path / "profile.txt")
        content = target.read_text()
        assert content
        for line in content.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit()

    def test_thread_span_table_tracks_worker_threads(self):
        tracing.install(tracing.TraceCollector())
        seen: dict[str, str | None] = {}
        try:
            tracing.enable_thread_spans()

            def work() -> None:
                with tracing.span("worker.task", trace_id="q_thread"):
                    found = tracing.span_for_thread(threading.get_ident())
                    seen["name"] = None if found is None else found.name
                    burn(0.01)

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
            assert seen["name"] == "worker.task"
            assert (
                tracing.span_for_thread(thread.ident or -1) is None
            ), "closed spans must leave the table"
        finally:
            tracing.disable_thread_spans()
            tracing.uninstall()


class TestOverhead:
    def test_sampling_overhead_is_bounded(self):
        """The profiler must not slow hot loops measurably; gate at a
        generous 25% here (CI noise), the SLO benchmark gates <5% on
        the real workload."""

        def workload() -> float:
            started = clock.now()
            total = 0
            for i in range(400_000):
                total += i * i
            assert total > 0
            return clock.now() - started

        workload()  # warm-up
        bare = min(workload() for _ in range(3))
        with SamplingProfiler(interval=0.005, track_spans=False):
            profiled = min(workload() for _ in range(3))
        assert profiled <= bare * 1.25 + 0.01
