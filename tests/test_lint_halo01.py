"""HALO01 (stencil/halo consistency) checker tests."""

from repro.lint.checkers.halo01 import HaloConsistency

from tests.lint_helpers import load, run_checker


def test_clean_fixture_passes():
    source = load("halo01_good.py", "repro.fields.fixture_good")
    assert run_checker(HaloConsistency(), source) == []


def test_bad_fixture_reports_each_violation():
    source = load("halo01_bad.py", "repro.fields.fixture_bad")
    diags = run_checker(HaloConsistency(), source)
    assert len(diags) == 6
    messages = "\n".join(d.message for d in diags)
    # H1: coefficient table shape.
    assert "must list exactly 2 one-sided coefficients" in messages
    assert "FD order 3 must be a positive even integer" in messages
    # H2: margins.
    assert "hard-coded halo margin 2" in messages
    assert "without an explicit margin" in messages
    # H3: differential flag vs. norm body.
    assert "differential=True but norm 'flat_norm'" in messages
    assert "differential=False but norm 'stencil_norm'" in messages


def test_margin_from_parameter_is_allowed():
    # A margin passed through an enclosing parameter cannot be proven to
    # come from kernel_half_width, so the checker trusts it (documented
    # heuristic: the caller was itself checked).
    source = load("halo01_good.py", "repro.fields.fixture_good")
    diags = [
        d
        for d in run_checker(HaloConsistency(), source)
        if "margin" in d.message
    ]
    assert diags == []
