"""Tests for column types, row codec and table schemas."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import Column, ColumnType, ForeignKey, SchemaError, TableSchema
from repro.storage.heap import decode_row, encode_row


def make_schema(**kwargs):
    defaults = dict(
        name="t",
        columns=(
            Column("id", ColumnType.INTEGER),
            Column("name", ColumnType.TEXT, nullable=True),
            Column("value", ColumnType.FLOAT, nullable=True),
            Column("payload", ColumnType.BLOB, nullable=True),
            Column("big", ColumnType.BIGINT, nullable=True),
        ),
        primary_key=("id",),
    )
    defaults.update(kwargs)
    return TableSchema(**defaults)


class TestColumnType:
    def test_integer_validation(self):
        assert ColumnType.INTEGER.validate(5, "c") == 5

    def test_integer_range(self):
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate(2**31, "c")
        assert ColumnType.BIGINT.validate(2**31, "c") == 2**31

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate(True, "c")

    def test_float_accepts_int(self):
        assert ColumnType.FLOAT.validate(3, "c") == 3.0

    def test_text_rejects_bytes(self):
        with pytest.raises(SchemaError):
            ColumnType.TEXT.validate(b"x", "c")

    def test_blob_normalises_memoryview(self):
        assert ColumnType.BLOB.validate(memoryview(b"abc"), "c") == b"abc"

    def test_none_passes_through(self):
        assert ColumnType.TEXT.validate(None, "c") is None

    @given(st.integers(-(2**63), 2**63 - 1))
    def test_bigint_codec_round_trip(self, value):
        raw = ColumnType.BIGINT.encode(value)
        out, end = ColumnType.BIGINT.decode(memoryview(raw), 0)
        assert out == value and end == len(raw)

    @given(st.floats(allow_nan=False))
    def test_float_codec_round_trip(self, value):
        raw = ColumnType.FLOAT.encode(value)
        out, _ = ColumnType.FLOAT.decode(memoryview(raw), 0)
        assert out == value

    @given(st.text(max_size=50))
    def test_text_codec_round_trip(self, value):
        raw = ColumnType.TEXT.encode(value)
        out, _ = ColumnType.TEXT.decode(memoryview(raw), 0)
        assert out == value

    def test_encoded_size_matches_encoding(self):
        for ctype, value in [
            (ColumnType.INTEGER, 7),
            (ColumnType.BIGINT, 1 << 40),
            (ColumnType.FLOAT, 2.5),
            (ColumnType.TEXT, "héllo"),
            (ColumnType.BLOB, b"12345"),
        ]:
            assert ctype.encoded_size(value) == len(ctype.encode(value))

    def test_encoded_size_of_null_is_zero(self):
        assert ColumnType.TEXT.encoded_size(None) == 0


class TestTableSchema:
    def test_valid_schema(self):
        schema = make_schema()
        assert schema.column_names[0] == "id"
        assert schema.column("name").nullable

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                (Column("a", ColumnType.INTEGER), Column("a", ColumnType.TEXT)),
                ("a",),
            )

    def test_missing_pk_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a", ColumnType.INTEGER),), ())

    def test_pk_on_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a", ColumnType.INTEGER),), ("b",))

    def test_nullable_pk_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t", (Column("a", ColumnType.INTEGER, nullable=True),), ("a",)
            )

    def test_index_on_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(indexes={"ix": ("nope",)})

    def test_fk_on_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(foreign_keys=(ForeignKey(("nope",), "parent"),))

    def test_invalid_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("bad name", (Column("a", ColumnType.INTEGER),), ("a",))
        with pytest.raises(SchemaError):
            Column("bad name", ColumnType.INTEGER)

    def test_validate_row_fills_nullable(self):
        row = make_schema().validate_row({"id": 1})
        assert row["name"] is None and row["value"] is None

    def test_validate_row_rejects_missing_required(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row({"name": "x"})

    def test_validate_row_rejects_unknown(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row({"id": 1, "zzz": 2})

    def test_key_of(self):
        schema = make_schema()
        assert schema.key_of({"id": 9, "name": None}) == (9,)

    def test_row_size_counts_everything(self):
        schema = make_schema()
        row = schema.validate_row({"id": 1, "payload": b"x" * 100})
        assert schema.row_size(row) > 100


class TestRowCodec:
    def test_round_trip(self):
        schema = make_schema()
        row = schema.validate_row(
            {"id": 42, "name": "atom", "value": 1.5, "payload": b"\x00\x01", "big": 1 << 40}
        )
        assert decode_row(schema, encode_row(schema, row)) == row

    def test_nulls_round_trip(self):
        schema = make_schema()
        row = schema.validate_row({"id": 1})
        assert decode_row(schema, encode_row(schema, row)) == row

    @given(
        st.integers(-(2**31), 2**31 - 1),
        st.one_of(st.none(), st.text(max_size=20)),
        st.one_of(st.none(), st.floats(allow_nan=False)),
        st.one_of(st.none(), st.binary(max_size=64)),
    )
    def test_round_trip_property(self, id_, name, value, payload):
        schema = make_schema()
        row = schema.validate_row(
            {"id": id_, "name": name, "value": value, "payload": payload}
        )
        assert decode_row(schema, encode_row(schema, row)) == row
