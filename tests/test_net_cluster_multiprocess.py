"""Multi-process cluster smoke test: real servers, real sockets, real CLI.

Two ``python -m repro.net serve-node`` processes host one shard each; a
TCP-transport mediator in this process and a ``serve-http`` front-door
process query them.  Results must match the in-process cluster
point-for-point, and killing a node must surface as a typed repro.net
error within the deadline budget — not a hang.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.mediator import Mediator, build_cluster
from repro.cluster.partition import MortonPartitioner
from repro.core import PdfQuery, ThresholdQuery
from repro.net.client import RetryPolicy
from repro.net.errors import NetError, PartialFailureError
from repro.net.pool import ConnectionPool
from repro.net.transport import TcpTransport
from repro.obs import tracing
from repro.simulation.datasets import mhd_dataset

REPO_ROOT = Path(__file__).parent.parent
SIDE = 16
TIMESTEPS = 2
NODES = 2

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_SUBPROCESS") == "1",
    reason="subprocess tests disabled by REPRO_SKIP_SUBPROCESS",
)


def free_port() -> int:
    probe = socket.socket()
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def run_cli(*args: str, timeout: float = 60.0) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro.net", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=timeout,
        env=_env(),
    )
    assert result.returncode == 0, result.stdout + result.stderr
    return result.stdout


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def spawn_cli(*args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.net", *args],
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )


def wait_for_node(port: int, budget: float = 90.0) -> None:
    """Poll a node server with health-check pings until it answers."""
    deadline = time.monotonic() + budget
    last_error = None
    while time.monotonic() < deadline:
        pool = ConnectionPool(
            "127.0.0.1", port, retry=RetryPolicy(attempts=1)
        )
        try:
            pool.ping(timeout=2.0)
            return
        except NetError as error:
            last_error = error
            time.sleep(0.25)
        finally:
            pool.close()
    raise AssertionError(f"node on port {port} never came up: {last_error}")


def _drain(process: subprocess.Popen) -> str:
    try:
        out, _ = process.communicate(timeout=10)
    except subprocess.TimeoutExpired:
        process.kill()
        out, _ = process.communicate()
    return out or ""


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    db_dir = tmp_path_factory.mktemp("cluster")
    out = run_cli(
        "init",
        "--db", str(db_dir),
        "--dataset", "mhd",
        "--side", str(SIDE),
        "--timesteps", str(TIMESTEPS),
        "--nodes", str(NODES),
    )
    assert "cluster.json" in out
    ports = [free_port() for _ in range(NODES)]
    peers = ",".join(f"127.0.0.1:{p}" for p in ports)
    processes = [
        spawn_cli(
            "serve-node",
            "--db", str(db_dir),
            "--node-id", str(node_id),
            "--port", str(ports[node_id]),
            "--peers", peers,
        )
        for node_id in range(NODES)
    ]
    try:
        for port in ports:
            wait_for_node(port)
        yield ports, processes
    finally:
        for process in processes:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        for process in processes:
            _drain(process)


@pytest.fixture(scope="module")
def tcp_mediator(cluster):
    ports, _ = cluster
    transport = TcpTransport(
        [f"127.0.0.1:{p}" for p in ports],
        timeout=60.0,
        retry=RetryPolicy(attempts=2, base_delay=0.05, max_delay=0.5),
    )
    mediator = Mediator(
        nodes=[],
        partitioner=MortonPartitioner(SIDE, NODES),
        transport=transport,
        scatter_timeout=120.0,
    )
    yield mediator
    mediator.close()


@pytest.fixture(scope="module")
def reference():
    mediator = build_cluster(
        mhd_dataset(side=SIDE, timesteps=TIMESTEPS, seed=11), nodes=NODES
    )
    yield mediator
    mediator.close()


def test_threshold_across_processes_matches_in_process(
    tcp_mediator, reference
):
    query = ThresholdQuery(
        dataset="mhd", field="vorticity", timestep=0, threshold=1.0
    )
    over_tcp = tcp_mediator.threshold(query)
    in_process = reference.threshold(query)
    assert len(over_tcp) == len(in_process) > 0
    assert np.array_equal(
        np.sort(over_tcp.zindexes), np.sort(in_process.zindexes)
    )
    order_tcp = np.argsort(over_tcp.zindexes)
    order_ref = np.argsort(in_process.zindexes)
    assert np.array_equal(
        over_tcp.values[order_tcp], in_process.values[order_ref]
    )


def test_pdf_across_processes_matches_in_process(tcp_mediator, reference):
    query = PdfQuery(
        dataset="mhd",
        field="pressure",
        timestep=0,
        bin_edges=tuple(float(x) for x in np.linspace(-3, 3, 13)),
    )
    assert list(tcp_mediator.pdf(query).counts) == list(
        reference.pdf(query).counts
    )


def test_http_front_door(cluster):
    ports, _ = cluster
    http_port = free_port()
    frontend = spawn_cli(
        "serve-http",
        "--nodes", ",".join(f"127.0.0.1:{p}" for p in ports),
        "--port", str(http_port),
    )
    base = f"http://127.0.0.1:{http_port}"
    try:
        deadline = time.monotonic() + 90.0
        stats = None
        while time.monotonic() < deadline:
            if frontend.poll() is not None:
                raise AssertionError(
                    f"serve-http exited early:\n{_drain(frontend)}"
                )
            try:
                with urllib.request.urlopen(f"{base}/stats", timeout=5) as r:
                    stats = r.read().decode()
                break
            except (urllib.error.URLError, ConnectionError, OSError):
                time.sleep(0.25)
        assert stats is not None, "HTTP front door never came up"
        assert "rpc_requests_total" in stats

        body = json.dumps(
            {
                "method": "GetThreshold",
                "dataset": "mhd",
                "field": "pressure",
                "timestep": 0,
                "threshold": 0.5,
            }
        ).encode()
        request = urllib.request.Request(
            f"{base}/", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as r:
            response = json.loads(r.read())
        assert response["status"] == "ok"
        assert response["count"] == len(response["points"]) > 0

        # The query's trace is retrievable over HTTP by its id.
        with urllib.request.urlopen(
            f"{base}/trace/{response['query_id']}", timeout=5
        ) as r:
            trace = json.loads(r.read())
        assert trace["status"] == "ok"
        assert any(
            span["name"] == "net.rpc" for span in trace["spans"]
        )
    finally:
        if frontend.poll() is None:
            frontend.send_signal(signal.SIGTERM)
        _drain(frontend)


def test_distributed_trace_attributes_node_side_work(tcp_mediator):
    """One stitched trace per query, with >= 95% of each node's true
    processing window covered by named remote spans parented under the
    mediator's scatter — no anonymous net.rpc black holes."""
    query = ThresholdQuery(
        dataset="mhd", field="vorticity", timestep=1, threshold=1.0
    )
    tcp_mediator.threshold(query)  # warm the describe cache, untraced
    collector = tracing.install(tracing.TraceCollector())
    try:
        result = tcp_mediator.threshold(query, use_cache=False)
        spans = collector.trace(result.query_id)
    finally:
        tracing.uninstall()

    assert spans, "the query must leave one stitched trace"
    by_id = {span.span_id: span for span in spans}
    root = next(span for span in spans if span.parent_id is None)
    assert root.name == "query.threshold"

    # The scatter structure: node.part under the root, one net.rpc per
    # node under its part.
    parts = [span for span in spans if span.name == "node.part"]
    assert {part.attributes.get("node") for part in parts} == {0, 1}
    assert all(part.parent_id == root.span_id for part in parts)
    rpcs = [span for span in spans if span.name == "net.rpc"]
    assert rpcs
    assert all(by_id[rpc.parent_id].name == "node.part" for rpc in rpcs)

    # Every rpc carries its node's true server-side processing window
    # (the server's own recv->send stamps, skew-independent)...
    windows: dict[int, float] = {}
    for rpc in rpcs:
        assert "remote_seconds" in rpc.attributes, (
            f"rpc to node {rpc.attributes.get('node')} shipped no spans"
        )
        windows[rpc.span_id] = float(rpc.attributes["remote_seconds"])

    # ...and the named remote spans grafted under it account for it.
    remote_requests = [
        span for span in spans
        if span.name == "server.request" and span.parent_id in windows
    ]
    assert len(remote_requests) == len(rpcs)
    assert {
        span.attributes.get("origin") for span in remote_requests
    } == {"node0", "node1"}
    attributed = sum(span.wall_seconds for span in remote_requests)
    window_total = sum(windows.values())
    assert window_total > 0
    assert attributed >= 0.95 * window_total, (
        f"only {attributed / window_total:.1%} of node-side wall time "
        f"is attributed to named remote spans"
    )


def test_killed_node_is_a_typed_error_not_a_hang(cluster, tcp_mediator):
    """Run last: kills node 1 for good."""
    ports, processes = cluster
    query = ThresholdQuery(
        dataset="mhd", field="pressure", timestep=0, threshold=0.5
    )
    assert len(tcp_mediator.threshold(query)) > 0  # healthy first

    processes[1].kill()
    processes[1].wait(timeout=10)
    start = time.monotonic()
    collector = tracing.install(tracing.TraceCollector())
    try:
        with pytest.raises(PartialFailureError) as info:
            tcp_mediator.threshold(query, use_cache=False)
    finally:
        tracing.uninstall()
    assert info.value.node_id == 1
    assert time.monotonic() - start < 60.0

    # The dead node's subtree is an explicitly-marked orphan in the
    # trace, not silent loss.
    spans = [
        span
        for trace_id in collector.trace_ids()
        for span in collector.trace(trace_id)
    ]
    orphans = [span for span in spans if span.attributes.get("orphaned")]
    assert orphans, "the failed part must leave an orphaned span"
    assert any(
        span.attributes.get("node") == 1
        and span.attributes.get("orphan_reason")
        for span in orphans
    )
