"""ERR01 (error taxonomy) checker tests."""

from repro.lint.checkers.err01 import ErrorTaxonomy

from tests.lint_helpers import load, run_checker


def test_clean_fixture_passes():
    source = load("err01_good.py", "repro.cluster.fixture_good")
    assert run_checker(ErrorTaxonomy(), source) == []


def test_bad_fixture_reports_each_violation():
    source = load("err01_bad.py", "repro.cluster.fixture_bad")
    diags = run_checker(ErrorTaxonomy(), source)
    assert len(diags) == 3
    messages = "\n".join(d.message for d in diags)
    assert "bare 'except:'" in messages
    assert "broad 'except Exception' without re-raise" in messages
    assert "raise Exception is untyped" in messages


def test_broad_catch_with_reraise_is_allowed():
    # err01_good.wrap_unexpected catches Exception but re-raises a typed
    # error, which is the sanctioned wrapping pattern.
    source = load("err01_good.py", "repro.storage.fixture_good")
    assert run_checker(ErrorTaxonomy(), source) == []


def test_scope_is_cluster_and_storage_only():
    checker = ErrorTaxonomy()
    assert checker.applies("repro.cluster.mediator")
    assert checker.applies("repro.storage.table")
    assert not checker.applies("repro.fields.fd")
    assert not checker.applies("repro.webservice")
