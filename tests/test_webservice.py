"""Tests for the web-service request/response tier."""

import json

import numpy as np
import pytest

from repro.cluster.webservice import WebService
from tests.test_core_threshold import ground_truth_norm


@pytest.fixture()
def service(mhd_cluster):
    return WebService(mhd_cluster)


def threshold_request(small_mhd, **overrides):
    norm = ground_truth_norm(small_mhd, "vorticity", 0)
    request = {
        "method": "GetThreshold",
        "dataset": "mhd",
        "field": "vorticity",
        "timestep": 0,
        "threshold": float(np.quantile(norm, 0.999)),
    }
    request.update(overrides)
    return request


class TestGetThreshold:
    def test_ok_response(self, small_mhd, service):
        response = service.handle(threshold_request(small_mhd))
        assert response["status"] == "ok"
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        threshold = float(np.quantile(norm, 0.999))
        assert response["count"] == (norm >= threshold).sum()
        point = response["points"][0]
        assert norm[point["x"], point["y"], point["z"]] == pytest.approx(
            point["value"], abs=1e-5
        )

    def test_response_is_json_serializable(self, small_mhd, service):
        response = service.handle(threshold_request(small_mhd))
        json.dumps(response)  # must not raise

    def test_box_parameter(self, small_mhd, service):
        response = service.handle(
            threshold_request(small_mhd, box=[0, 0, 0, 16, 16, 16])
        )
        assert response["status"] == "ok"
        for point in response["points"]:
            assert max(point["x"], point["y"], point["z"]) < 16

    def test_threshold_too_low_error(self, small_mhd, mhd_cluster):
        service = WebService(mhd_cluster, max_points=100)
        response = service.handle(threshold_request(small_mhd, threshold=0.0))
        assert response["status"] == "error"
        assert response["code"] == "threshold_too_low"
        assert "PDF" in response["message"]

    def test_unknown_field_error(self, small_mhd, service):
        response = service.handle(
            threshold_request(small_mhd, field="enstrophy")
        )
        assert response == {
            "status": "error",
            "code": "unknown_field",
            "message": response["message"],
        }

    def test_missing_parameter(self, service):
        response = service.handle({"method": "GetThreshold", "dataset": "mhd"})
        assert response["code"] == "bad_request"

    def test_wrong_type(self, small_mhd, service):
        response = service.handle(threshold_request(small_mhd, timestep="zero"))
        assert response["code"] == "bad_request"

    def test_malformed_box(self, small_mhd, service):
        response = service.handle(threshold_request(small_mhd, box=[1, 2, 3]))
        assert response["code"] == "bad_request"


class TestOtherMethods:
    def test_get_pdf(self, service):
        response = service.handle(
            {
                "method": "GetPdf",
                "dataset": "mhd",
                "field": "vorticity",
                "timestep": 0,
                "bin_edges": [0.0, 2.0, 4.0],
            }
        )
        assert response["status"] == "ok"
        assert sum(response["counts"]) == 32**3

    def test_get_topk(self, small_mhd, service):
        response = service.handle(
            {
                "method": "GetTopK",
                "dataset": "mhd",
                "field": "vorticity",
                "timestep": 0,
                "k": 3,
            }
        )
        assert response["status"] == "ok"
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        assert response["points"][0]["value"] == pytest.approx(
            norm.max(), abs=1e-5
        )

    def test_list_fields(self, service):
        response = service.handle({"method": "ListFields"})
        assert "vorticity" in response["fields"]

    def test_list_datasets(self, service):
        response = service.handle({"method": "ListDatasets"})
        assert response["datasets"] == ["mhd"]

    def test_get_statistics(self, small_mhd, service):
        before = service.handle({"method": "GetStatistics"})
        assert before["threshold_queries"] == 0
        service.handle(threshold_request(small_mhd))
        service.handle(threshold_request(small_mhd))
        after = service.handle({"method": "GetStatistics"})
        assert after["threshold_queries"] == 2
        assert after["cache_hit_ratio"] == pytest.approx(0.5)
        assert after["points_returned"] > 0


class TestBatchAndRegistration:
    def test_batch_threshold(self, small_mhd, mhd_cluster):
        import numpy as np

        service = WebService(mhd_cluster)
        vort = ground_truth_norm(small_mhd, "vorticity", 0)
        response = service.handle(
            {
                "method": "GetBatchThreshold",
                "queries": [
                    {"dataset": "mhd", "field": "vorticity", "timestep": 0,
                     "threshold": float(np.quantile(vort, 0.999))},
                    {"dataset": "mhd", "field": "q_criterion", "timestep": 0,
                     "threshold": 1e6},
                ],
            }
        )
        assert response["status"] == "ok"
        assert len(response["results"]) == 2
        assert response["results"][0]["count"] > 0

    def test_batch_rejects_mixed_sources(self, service):
        response = service.handle(
            {
                "method": "GetBatchThreshold",
                "queries": [
                    {"dataset": "mhd", "field": "vorticity", "timestep": 0,
                     "threshold": 1.0},
                    {"dataset": "mhd", "field": "magnetic", "timestep": 0,
                     "threshold": 1.0},
                ],
            }
        )
        assert response["code"] == "bad_request"

    def test_register_field_then_query(self, small_mhd, mhd_cluster):
        service = WebService(mhd_cluster)
        registered = service.handle(
            {
                "method": "RegisterField",
                "name": "ws_current",
                "expression": "norm(curl(magnetic))",
            }
        )
        assert registered["status"] == "ok"
        assert registered["source"] == "magnetic"
        result = service.handle(
            {
                "method": "GetThreshold", "dataset": "mhd",
                "field": "ws_current", "timestep": 0, "threshold": 10.0,
            }
        )
        assert result["status"] == "ok"

    def test_register_bad_expression(self, service):
        response = service.handle(
            {
                "method": "RegisterField",
                "name": "bad",
                "expression": "curl(velocity",
            }
        )
        assert response["code"] == "bad_expression"

    def test_register_duplicate(self, service):
        response = service.handle(
            {
                "method": "RegisterField",
                "name": "vorticity",
                "expression": "norm(curl(velocity))",
            }
        )
        assert response["code"] == "duplicate_field"


class TestIntrospection:
    @pytest.fixture()
    def traced(self):
        from repro.obs import tracing

        collector = tracing.install()
        yield collector
        tracing.uninstall()

    def test_get_stats_counts_semantic_cache_hits(self, small_mhd, service):
        # Acceptance criterion: a repeated query shows up as a nonzero
        # semantic-cache hit counter in /stats.
        request = threshold_request(small_mhd)
        service.handle(request)
        service.handle(request)
        response = service.handle({"method": "GetStats"})
        assert response["status"] == "ok"
        metrics = response["metrics"]
        hits = metrics["semantic_cache_hits_total"]["samples"][0]["value"]
        assert hits > 0
        assert response["statistics"]["threshold_queries"] == 2

    def test_get_stats_prometheus_format(self, small_mhd, service):
        service.handle(threshold_request(small_mhd))
        response = service.handle(
            {"method": "GetStats", "format": "prometheus"}
        )
        assert response["status"] == "ok"
        assert 'queries_total{kind="threshold"} 1.0' in response["body"]
        assert "webservice_request_seconds_bucket" in response["body"]

    def test_get_stats_bad_format(self, service):
        response = service.handle({"method": "GetStats", "format": "xml"})
        assert response["code"] == "bad_request"

    def test_get_trace_returns_span_tree(self, small_mhd, service, traced):
        ok = service.handle(threshold_request(small_mhd))
        response = service.handle(
            {"method": "GetTrace", "query_id": ok["query_id"]}
        )
        assert response["status"] == "ok"
        names = {span["name"] for span in response["spans"]}
        assert "query.threshold" in names and "node.part" in names
        assert "query.threshold" in response["tree"]
        assert response["category_totals"]

    def test_get_trace_unknown_id(self, service, traced):
        response = service.handle(
            {"method": "GetTrace", "query_id": "q999999"}
        )
        assert response["code"] == "unknown_trace"

    def test_get_trace_without_collector(self, service):
        response = service.handle(
            {"method": "GetTrace", "query_id": "q000001"}
        )
        assert response["code"] == "tracing_disabled"

    def test_http_stats_route(self, small_mhd, service):
        service.handle(threshold_request(small_mhd))
        status, content_type, body = service.handle_http("GET", "/stats")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "queries_total" in body

    def test_http_trace_route(self, small_mhd, service, traced):
        ok = service.handle(threshold_request(small_mhd))
        status, content_type, body = service.handle_http(
            "GET", f"/trace/{ok['query_id']}"
        )
        assert status == 200
        assert content_type == "application/json"
        assert json.loads(body)["query_id"] == ok["query_id"]

    def test_http_trace_unknown_is_404(self, service, traced):
        status, _, _ = service.handle_http("GET", "/trace/q999999")
        assert status == 404

    def test_http_trace_disabled_is_503(self, service):
        status, _, _ = service.handle_http("GET", "/trace/q000001")
        assert status == 503

    def test_http_unknown_route_and_method(self, service):
        assert service.handle_http("GET", "/nope")[0] == 404
        assert service.handle_http("POST", "/stats")[0] == 405

    def test_request_latency_histogram_by_method(self, service):
        service.handle({"method": "ListFields"})
        service.handle({"method": "DropTables"})
        latency = service._mediator.metrics.get("webservice_request_seconds")
        assert latency.labels(method="ListFields").count == 1
        assert latency.labels(method="<unknown>").count == 1
        in_flight = service._mediator.metrics.get("webservice_in_flight")
        assert in_flight.value == 0.0


class TestDispatch:
    def test_unknown_method(self, service):
        response = service.handle({"method": "DropTables"})
        assert response["code"] == "unknown_method"

    def test_missing_method(self, service):
        response = service.handle({})
        assert response["code"] == "bad_request"

    def test_never_raises(self, service):
        # Garbage of various shapes must come back as error responses.
        for garbage in ({"method": 42}, {"method": "GetPdf"}, {"method": "GetThreshold", "dataset": 1}):
            response = service.handle(garbage)
            assert response["status"] == "error"
