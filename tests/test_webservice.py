"""Tests for the web-service request/response tier."""

import json

import numpy as np
import pytest

from repro.cluster.webservice import WebService
from tests.test_core_threshold import ground_truth_norm


@pytest.fixture()
def service(mhd_cluster):
    return WebService(mhd_cluster)


def threshold_request(small_mhd, **overrides):
    norm = ground_truth_norm(small_mhd, "vorticity", 0)
    request = {
        "method": "GetThreshold",
        "dataset": "mhd",
        "field": "vorticity",
        "timestep": 0,
        "threshold": float(np.quantile(norm, 0.999)),
    }
    request.update(overrides)
    return request


class TestGetThreshold:
    def test_ok_response(self, small_mhd, service):
        response = service.handle(threshold_request(small_mhd))
        assert response["status"] == "ok"
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        threshold = float(np.quantile(norm, 0.999))
        assert response["count"] == (norm >= threshold).sum()
        point = response["points"][0]
        assert norm[point["x"], point["y"], point["z"]] == pytest.approx(
            point["value"], abs=1e-5
        )

    def test_response_is_json_serializable(self, small_mhd, service):
        response = service.handle(threshold_request(small_mhd))
        json.dumps(response)  # must not raise

    def test_box_parameter(self, small_mhd, service):
        response = service.handle(
            threshold_request(small_mhd, box=[0, 0, 0, 16, 16, 16])
        )
        assert response["status"] == "ok"
        for point in response["points"]:
            assert max(point["x"], point["y"], point["z"]) < 16

    def test_threshold_too_low_error(self, small_mhd, mhd_cluster):
        service = WebService(mhd_cluster, max_points=100)
        response = service.handle(threshold_request(small_mhd, threshold=0.0))
        assert response["status"] == "error"
        assert response["code"] == "threshold_too_low"
        assert "PDF" in response["message"]

    def test_unknown_field_error(self, small_mhd, service):
        response = service.handle(
            threshold_request(small_mhd, field="enstrophy")
        )
        assert response == {
            "status": "error",
            "code": "unknown_field",
            "message": response["message"],
        }

    def test_missing_parameter(self, service):
        response = service.handle({"method": "GetThreshold", "dataset": "mhd"})
        assert response["code"] == "bad_request"

    def test_wrong_type(self, small_mhd, service):
        response = service.handle(threshold_request(small_mhd, timestep="zero"))
        assert response["code"] == "bad_request"

    def test_malformed_box(self, small_mhd, service):
        response = service.handle(threshold_request(small_mhd, box=[1, 2, 3]))
        assert response["code"] == "bad_request"


class TestOtherMethods:
    def test_get_pdf(self, service):
        response = service.handle(
            {
                "method": "GetPdf",
                "dataset": "mhd",
                "field": "vorticity",
                "timestep": 0,
                "bin_edges": [0.0, 2.0, 4.0],
            }
        )
        assert response["status"] == "ok"
        assert sum(response["counts"]) == 32**3

    def test_get_topk(self, small_mhd, service):
        response = service.handle(
            {
                "method": "GetTopK",
                "dataset": "mhd",
                "field": "vorticity",
                "timestep": 0,
                "k": 3,
            }
        )
        assert response["status"] == "ok"
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        assert response["points"][0]["value"] == pytest.approx(
            norm.max(), abs=1e-5
        )

    def test_list_fields(self, service):
        response = service.handle({"method": "ListFields"})
        assert "vorticity" in response["fields"]

    def test_list_datasets(self, service):
        response = service.handle({"method": "ListDatasets"})
        assert response["datasets"] == ["mhd"]

    def test_get_statistics(self, small_mhd, service):
        before = service.handle({"method": "GetStatistics"})
        assert before["threshold_queries"] == 0
        service.handle(threshold_request(small_mhd))
        service.handle(threshold_request(small_mhd))
        after = service.handle({"method": "GetStatistics"})
        assert after["threshold_queries"] == 2
        assert after["cache_hit_ratio"] == pytest.approx(0.5)
        assert after["points_returned"] > 0


class TestBatchAndRegistration:
    def test_batch_threshold(self, small_mhd, mhd_cluster):
        import numpy as np

        service = WebService(mhd_cluster)
        vort = ground_truth_norm(small_mhd, "vorticity", 0)
        response = service.handle(
            {
                "method": "GetBatchThreshold",
                "queries": [
                    {"dataset": "mhd", "field": "vorticity", "timestep": 0,
                     "threshold": float(np.quantile(vort, 0.999))},
                    {"dataset": "mhd", "field": "q_criterion", "timestep": 0,
                     "threshold": 1e6},
                ],
            }
        )
        assert response["status"] == "ok"
        assert len(response["results"]) == 2
        assert response["results"][0]["count"] > 0

    def test_batch_rejects_mixed_sources(self, service):
        response = service.handle(
            {
                "method": "GetBatchThreshold",
                "queries": [
                    {"dataset": "mhd", "field": "vorticity", "timestep": 0,
                     "threshold": 1.0},
                    {"dataset": "mhd", "field": "magnetic", "timestep": 0,
                     "threshold": 1.0},
                ],
            }
        )
        assert response["code"] == "bad_request"

    def test_register_field_then_query(self, small_mhd, mhd_cluster):
        service = WebService(mhd_cluster)
        registered = service.handle(
            {
                "method": "RegisterField",
                "name": "ws_current",
                "expression": "norm(curl(magnetic))",
            }
        )
        assert registered["status"] == "ok"
        assert registered["source"] == "magnetic"
        result = service.handle(
            {
                "method": "GetThreshold", "dataset": "mhd",
                "field": "ws_current", "timestep": 0, "threshold": 10.0,
            }
        )
        assert result["status"] == "ok"

    def test_register_bad_expression(self, service):
        response = service.handle(
            {
                "method": "RegisterField",
                "name": "bad",
                "expression": "curl(velocity",
            }
        )
        assert response["code"] == "bad_expression"

    def test_register_duplicate(self, service):
        response = service.handle(
            {
                "method": "RegisterField",
                "name": "vorticity",
                "expression": "norm(curl(velocity))",
            }
        )
        assert response["code"] == "duplicate_field"


class TestDispatch:
    def test_unknown_method(self, service):
        response = service.handle({"method": "DropTables"})
        assert response["code"] == "unknown_method"

    def test_missing_method(self, service):
        response = service.handle({})
        assert response["code"] == "bad_request"

    def test_never_raises(self, service):
        # Garbage of various shapes must come back as error responses.
        for garbage in ({"method": 42}, {"method": "GetPdf"}, {"method": "GetThreshold", "dataset": 1}):
            response = service.handle(garbage)
            assert response["status"] == "error"
