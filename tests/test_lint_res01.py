"""RES01: closeable objects created in net/storage/cluster need owners."""

from repro.lint.checkers import ResourceOwnership

from tests.lint_helpers import load, run_program_checker


def test_bad_fixture_flags_every_leak_shape():
    diags = run_program_checker(
        ResourceOwnership(),
        load("res01_bad.py", "repro.net.fixture_res01"),
    )
    messages = sorted(d.message for d in diags)
    assert len(messages) == 5, messages
    assert any("immediately" in m and "dropped" in m for m in messages)
    assert any("never closed" in m for m in messages)
    assert any("no close()/shutdown() to release it" in m for m in messages)
    assert any("Segment instance" in m for m in messages)


def test_good_fixture_is_clean():
    diags = run_program_checker(
        ResourceOwnership(),
        load("res01_good.py", "repro.net.fixture_res01"),
    )
    assert diags == []


def test_out_of_scope_module_is_ignored():
    # Same leaks under repro.core are out of RES01's blast radius.
    diags = run_program_checker(
        ResourceOwnership(),
        load("res01_bad.py", "repro.core.fixture_res01"),
    )
    assert diags == []


def test_aio_bad_fixture_flags_leaked_servers():
    diags = run_program_checker(
        ResourceOwnership(),
        load("res01_aio_bad.py", "repro.net.fixture_res01aio"),
    )
    messages = sorted(d.message for d in diags)
    assert len(messages) == 3, messages
    assert any("never closed" in m for m in messages)
    assert any("immediately" in m and "dropped" in m for m in messages)
    assert any("no close()/shutdown() to release it" in m for m in messages)
    assert all("asyncio server" in m for m in messages)


def test_aio_good_fixture_is_clean():
    diags = run_program_checker(
        ResourceOwnership(),
        load("res01_aio_good.py", "repro.net.fixture_res01aio"),
    )
    assert diags == []


def test_aio_factories_out_of_scope_are_ignored():
    diags = run_program_checker(
        ResourceOwnership(),
        load("res01_aio_bad.py", "repro.harness.fixture_res01aio"),
    )
    assert diags == []
