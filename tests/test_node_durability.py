"""Tests for durable nodes: cache state survives a simulated crash."""

import numpy as np
import pytest

from repro.cluster import DatabaseNode
from repro.core import ThresholdQuery, pointset
from repro.core.cache import SemanticCache
from repro.costmodel import Category, paper_cluster
from repro.grid import Box
from repro.morton import encode_array
from repro.storage import StorageDevice
from repro.storage.wal import WalKind, recover
from repro.costmodel.devices import SsdSpec


@pytest.fixture()
def durable_node(small_mhd):
    node = DatabaseNode(0, paper_cluster(), durable=True)
    node.register_dataset(small_mhd.spec)
    return node


class TestDurableNode:
    def test_atom_ingest_is_unlogged(self, durable_node):
        blob = b"\x00" * (8**3 * 3 * 4)
        with durable_node.db.transaction() as txn:
            durable_node.store_atom(txn, "mhd", "velocity", 0, 0, blob)
        # Bulk data loads append nothing (no COMMIT either: txn clean).
        assert len(durable_node.db.wal) == 0

    def test_cache_writes_are_logged(self, durable_node):
        cache = SemanticCache(durable_node.db)
        z = encode_array(np.array([1]), np.array([2]), np.array([3]))
        with durable_node.db.transaction() as txn:
            cache.store(
                txn, "mhd", "vorticity", 0, Box.cube(8), 5.0,
                z, np.array([7.0]),
            )
        kinds = {record.kind for record in durable_node.db.wal.records()}
        # cacheInfo rows log INSERT; the packed chunks land as one
        # INSERT_MANY batch record.
        assert WalKind.INSERT in kinds and WalKind.COMMIT in kinds
        assert WalKind.INSERT_MANY in kinds

    def test_cache_state_survives_crash(self, durable_node):
        """Replaying the WAL restores cacheInfo/cacheData exactly."""
        cache = SemanticCache(durable_node.db)
        z = encode_array(np.arange(5), np.arange(5), np.arange(5))
        values = np.linspace(5.0, 9.0, 5)
        with durable_node.db.transaction() as txn:
            cache.store(
                txn, "mhd", "vorticity", 0, Box.cube(8), 5.0, z, values
            )

        # "Crash": rebuild the cache tables from the log alone.
        replica = recover(
            durable_node.db.wal,
            [
                (durable_node.db.table("cacheInfo").schema, "ssd"),
                (durable_node.db.table("cacheData").schema, "ssd"),
            ],
            [StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP)],
        )
        with replica.transaction() as txn:
            info_rows = list(replica.table("cacheInfo").scan(txn))
            data_rows = list(replica.table("cacheData").scan(txn))
        assert len(info_rows) == 1
        assert info_rows[0]["threshold"] == 5.0
        assert info_rows[0]["point_count"] == 5
        assert sum(r["pointCount"] for r in data_rows) == 5
        replayed = np.concatenate(
            [pointset.unpack_f64(r["vBlob"]) for r in data_rows]
        )
        assert sorted(replayed.tolist()) == values.tolist()

    def test_wal_flush_charges_query_ledger(self, durable_node, small_mhd, mhd_cluster):
        """A durable node's cache update pays log-force time."""
        from repro.costmodel import CostLedger

        cache = SemanticCache(durable_node.db)
        ledger = CostLedger()
        z = encode_array(np.array([0]), np.array([0]), np.array([0]))
        with durable_node.db.transaction(ledger) as txn:
            cache.store(
                txn, "mhd", "vorticity", 1, Box.cube(8), 2.0,
                z, np.array([3.0]),
            )
        assert ledger[Category.CACHE_LOOKUP] > 0

    def test_default_nodes_are_not_durable(self, small_mhd):
        node = DatabaseNode(1, paper_cluster())
        assert node.db.wal is None
