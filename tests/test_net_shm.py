"""Shared-memory transport tests: ring protocol, negotiation, parity.

The ring/writer units run against a real ``multiprocessing``
shared-memory segment; the end-to-end tests stand up in-thread node
servers and verify that the shm fast path returns byte-identical
results to plain TCP while moving almost nothing through the socket.
"""

import pathlib

import numpy as np
import pytest

from repro.cluster.mediator import Mediator, build_cluster
from repro.cluster.partition import MortonPartitioner
from repro.core import ThresholdQuery
from repro.net.compress import NO_COMPRESSION
from repro.net.errors import FrameError
from repro.net.server import ClusterConfig, NodeServer
from repro.net.shm import (
    _OWNED_NAMES,
    LOCATOR,
    ShmRing,
    ShmWriter,
    host_token,
)
from repro.net.transport import TcpTransport
from repro.simulation.datasets import mhd_dataset

SIDE = 16
TIMESTEPS = 2
NODES = 2
CONFIG = ClusterConfig(
    dataset="mhd", side=SIDE, timesteps=TIMESTEPS, seed=11, nodes=NODES
)


# -- ring protocol ----------------------------------------------------------------


def test_ring_claim_copy_view_release_cycle():
    """A payload written through the writer reads back via the ring."""
    with ShmRing(slots=2, slot_bytes=4096) as ring:
        writer = ShmWriter(ring.name, 2, 4096)
        try:
            payload = bytes(range(256)) * 4
            claimed = writer.claim(len(payload))
            assert claimed is not None
            slot, gen, target = claimed
            target[: len(payload)] = payload
            target.release()  # writers drop their view after the copy
            assert bytes(ring.view(slot, gen, len(payload))) == payload
            ring.release(slot, gen)
            again = writer.claim(16)
            assert again is not None and again[0] == slot
            assert again[1] != gen
            again[2].release()
        finally:
            writer.close()


def test_ring_exhaustion_returns_none_until_released():
    """With every slot claimed the writer reports no space (the caller
    then ships that frame inline over TCP) until the reader acks."""
    with ShmRing(slots=2, slot_bytes=1024) as ring:
        writer = ShmWriter(ring.name, 2, 1024)
        try:
            first = writer.claim(8)
            second = writer.claim(8)
            assert first is not None and second is not None
            first[2].release()
            second[2].release()
            assert writer.claim(8) is None
            ring.release(first[0], first[1])
            reclaimed = writer.claim(8)
            assert reclaimed is not None
            reclaimed[2].release()
        finally:
            writer.close()


def test_oversized_claim_returns_none():
    with ShmRing(slots=1, slot_bytes=64) as ring:
        writer = ShmWriter(ring.name, 1, 64)
        try:
            assert writer.claim(65) is None
            assert writer.claim(64) is not None
        finally:
            writer.close()


def test_view_outside_geometry_is_a_frame_error():
    with ShmRing(slots=2, slot_bytes=128) as ring:
        with pytest.raises(FrameError, match="outside ring"):
            ring.view(2, 1, 16)
        with pytest.raises(FrameError, match="outside ring"):
            ring.view(0, 1, 129)


def test_writer_rejects_mismatched_geometry():
    with ShmRing(slots=1, slot_bytes=64) as ring:
        with pytest.raises(ValueError, match="ring geometry"):
            ShmWriter(ring.name, 64, 1 << 20)


def test_ring_close_unlinks_the_segment():
    """RES01: the owner's close removes the backing file."""
    ring = ShmRing(slots=1, slot_bytes=64)
    name = ring.name
    backing = pathlib.Path("/dev/shm") / name.lstrip("/")
    assert backing.exists()
    assert name in _OWNED_NAMES
    ring.close()
    assert not backing.exists()
    assert name not in _OWNED_NAMES
    ring.close()  # idempotent


def test_same_process_writer_does_not_break_owner_cleanup():
    """Attaching a ring owned by this very process (in-thread clusters)
    must leave the owner's tracker registration alone."""
    ring = ShmRing(slots=1, slot_bytes=64)
    writer = ShmWriter(ring.name, 1, 64)
    writer.close()
    backing = pathlib.Path("/dev/shm") / ring.name.lstrip("/")
    ring.close()
    assert not backing.exists()


def test_host_token_is_stable_and_qualified():
    token = host_token()
    assert token == host_token()
    assert ":" in token


def test_locator_layout_is_wire_stable():
    assert LOCATOR.size == 20
    assert LOCATOR.unpack(LOCATOR.pack(3, 7, 4096)) == (3, 7, 4096)


# -- end-to-end over in-thread servers --------------------------------------------


class _CollectSink:
    """PartialSink that copies every streamed blob for comparison."""

    def __init__(self) -> None:
        self.chunks: list[bytes] = []

    def reset(self) -> None:
        self.chunks.clear()

    def feed(self, header: dict, blobs) -> None:
        # Copy: shm blobs are views of a ring slot that is recycled
        # the moment feed returns.
        self.chunks.append(b"".join(bytes(blob) for blob in blobs))


@pytest.fixture(scope="module")
def cluster():
    servers = [NodeServer(i, CONFIG) for i in range(NODES)]
    addresses = [f"127.0.0.1:{s.port}" for s in servers]
    for server in servers:
        server.connect_peers(addresses)
        server.load()
        server.start()
    yield addresses
    for server in servers:
        server.shutdown()


def _transport(addresses, **kwargs) -> TcpTransport:
    return TcpTransport(addresses, timeout=60.0, **kwargs)


def test_streamed_echo_is_byte_identical_across_transports(cluster):
    """A 16 MiB streamed transfer arrives bit-exact via ring and socket."""
    points = 1 << 20
    tcp = _transport(cluster, compression=NO_COMPRESSION)
    shm = _transport(cluster, compression=NO_COMPRESSION, shm=True)
    try:
        tcp_sink, shm_sink = _CollectSink(), _CollectSink()
        tcp_call = tcp._call(
            0, "echo", {"points": points}, sink=tcp_sink, timeout=60.0
        )
        shm_call = shm._call(
            0, "echo", {"points": points}, sink=shm_sink, timeout=60.0
        )
        assert b"".join(tcp_sink.chunks) == b"".join(shm_sink.chunks)
        assert sum(len(c) for c in shm_sink.chunks) == points * 16
        # The payload rode the ring: the socket carried only locators.
        assert shm_call.shm_bytes >= points * 16
        assert shm_call.bytes_received < 4096
        assert tcp_call.shm_bytes == 0
        assert tcp_call.bytes_received > points * 16
    finally:
        tcp.close()
        shm.close()


def test_shm_grant_declined_by_a_server_without_shm():
    """A server configured without shm declines the grant; the client
    falls back to TCP transparently and still gets every byte."""
    config = ClusterConfig(
        dataset="mhd", side=SIDE, timesteps=TIMESTEPS, seed=11, nodes=1
    )
    server = NodeServer(0, config, shm=False)
    server.load()
    server.start()
    transport = _transport(
        [f"127.0.0.1:{server.port}"], compression=NO_COMPRESSION, shm=True
    )
    try:
        points = 1 << 20
        sink = _CollectSink()
        call = transport._call(
            0, "echo", {"points": points}, sink=sink, timeout=60.0
        )
        assert call.shm_bytes == 0
        assert sum(len(c) for c in sink.chunks) == points * 16
    finally:
        transport.close()
        server.shutdown()


def _mediator(addresses, **kwargs) -> Mediator:
    return Mediator(
        nodes=[],
        partitioner=MortonPartitioner(SIDE, NODES),
        transport=_transport(addresses, **kwargs),
        scatter_timeout=120.0,
    )


def test_threshold_results_identical_tcp_shm_inprocess(cluster):
    """Point-for-point equality across all three execution paths."""
    query = ThresholdQuery(
        dataset="mhd", field="vorticity", timestep=0, threshold=0.5
    )
    tcp = _mediator(cluster)
    shm = _mediator(cluster, shm=True)
    local = build_cluster(
        mhd_dataset(side=SIDE, timesteps=TIMESTEPS, seed=11), nodes=NODES
    )
    try:
        over_tcp = tcp.threshold(query, use_cache=False)
        over_shm = shm.threshold(query, use_cache=False)
        in_process = local.threshold(query, use_cache=False)
        assert len(over_shm) == len(in_process) > 0
        order_tcp = np.argsort(over_tcp.zindexes, kind="stable")
        order_shm = np.argsort(over_shm.zindexes, kind="stable")
        order_ref = np.argsort(in_process.zindexes, kind="stable")
        assert np.array_equal(
            over_shm.zindexes[order_shm], in_process.zindexes[order_ref]
        )
        assert np.array_equal(
            over_shm.values[order_shm], in_process.values[order_ref]
        )
        assert np.array_equal(
            over_tcp.zindexes[order_tcp], over_shm.zindexes[order_shm]
        )
        assert np.array_equal(
            over_tcp.values[order_tcp], over_shm.values[order_shm]
        )
    finally:
        tcp.close()
        shm.close()
        local.close()


def test_shm_transport_closes_its_rings(cluster):
    """RES01 end-to-end: no ring segment survives transport close."""
    transport = _transport(cluster, compression=NO_COMPRESSION, shm=True)
    sink = _CollectSink()
    transport._call(0, "echo", {"points": 1 << 20}, sink=sink, timeout=60.0)
    owned_before = set(_OWNED_NAMES)
    assert owned_before  # the connection ring is registered
    transport.close()
    for name in owned_before:
        backing = pathlib.Path("/dev/shm") / name.lstrip("/")
        assert not backing.exists()
    assert not _OWNED_NAMES & owned_before
