"""turblint framework tests: suppressions, scoping, CLI and exit codes."""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import SourceFile, main, run_paths
from repro.lint.checkers import ALL_CHECKERS
from repro.lint.cli import (
    EXIT_CLEAN,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    discover,
    module_name_for,
)
from repro.lint.diagnostics import LintSyntaxError

REPO_ROOT = Path(__file__).parent.parent


# -- SourceFile: suppressions ---------------------------------------------------


def test_line_suppression():
    source = SourceFile(
        "mem.py",
        "repro.cluster.mem",
        text="raise Exception('x')  # turblint: disable=ERR01\n",
    )
    assert source.suppressed("ERR01", 1)
    assert not source.suppressed("ERR01", 2)
    assert not source.suppressed("TXN01", 1)


def test_file_suppression_and_all():
    source = SourceFile(
        "mem.py",
        "repro.cluster.mem",
        text=(
            "# turblint: disable-file=LOCK01\n"
            "x = 1  # turblint: disable=all\n"
        ),
    )
    assert source.suppressed("LOCK01", 99)
    assert source.suppressed("ERR01", 2)  # disable=all on line 2
    assert not source.suppressed("ERR01", 1)


def test_multiple_codes_one_comment():
    source = SourceFile(
        "mem.py",
        "repro.storage.mem",
        text="x = 1  # turblint: disable=TXN01, err01\n",
    )
    assert source.suppressed("TXN01", 1)
    assert source.suppressed("ERR01", 1)  # codes are case-insensitive
    assert not source.suppressed("COST01", 1)


def test_syntax_error_raises_lint_error():
    with pytest.raises(LintSyntaxError):
        SourceFile("mem.py", "repro.x", text="def broken(:\n")


# -- module naming and discovery ------------------------------------------------


def test_module_name_anchors_at_src(tmp_path):
    path = tmp_path / "src" / "repro" / "storage" / "wal.py"
    assert module_name_for(path) == "repro.storage.wal"
    init = tmp_path / "src" / "repro" / "lint" / "__init__.py"
    assert module_name_for(init) == "repro.lint"


def test_module_name_outside_roots_falls_back_to_stem(tmp_path):
    assert module_name_for(tmp_path / "scratch.py") == "scratch"


def test_discover_walks_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "b.txt").write_text("not python\n")
    (tmp_path / "c.py").write_text("y = 2\n")
    found = discover([tmp_path / "pkg", tmp_path / "c.py"])
    assert found == sorted(found)  # deterministic output order
    assert {p.name for p in found} == {"a.py", "c.py"}


# -- run_paths / CLI ------------------------------------------------------------


def _write_engine_file(tmp_path: Path, text: str) -> Path:
    """Place a file so it resolves to a ``repro.storage`` module."""
    target = tmp_path / "src" / "repro" / "storage"
    target.mkdir(parents=True)
    path = target / "fixture.py"
    path.write_text(text)
    return path


def test_run_paths_reports_scoped_violation(tmp_path):
    path = _write_engine_file(tmp_path, "raise Exception('boom')\n")
    diagnostics, file_count = run_paths([path])
    assert file_count == 1
    assert [d.code for d in diagnostics] == ["ERR01"]


def test_run_paths_select_restricts_checkers(tmp_path):
    path = _write_engine_file(
        tmp_path,
        "import time\n\n\ndef f(db):\n    db.begin()\n    return time.time()\n",
    )
    all_codes = {d.code for d in run_paths([path])[0]}
    assert all_codes == {"COST01", "TXN01", "OBS01"}
    only_txn = {d.code for d in run_paths([path], select=["txn01"])[0]}
    assert only_txn == {"TXN01"}


def test_run_paths_suppression_applies(tmp_path):
    path = _write_engine_file(
        tmp_path, "raise Exception('x')  # turblint: disable=ERR01\n"
    )
    assert run_paths([path])[0] == []


def test_run_paths_parse_error_is_reported(tmp_path):
    path = _write_engine_file(tmp_path, "def broken(:\n")
    diagnostics, _ = run_paths([path])
    assert [d.code for d in diagnostics] == ["PARSE"]


def test_main_exit_codes(tmp_path, capsys):
    bad = _write_engine_file(tmp_path, "raise Exception('boom')\n")
    assert main([str(bad)]) == EXIT_VIOLATIONS
    out = capsys.readouterr().out
    assert "ERR01" in out and "1 issue(s) found" in out

    clean = bad.with_name("clean.py")
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == EXIT_CLEAN


def test_main_rejects_missing_path(tmp_path, capsys):
    # A typo'd path must not green-light CI with "0 files checked".
    assert main([str(tmp_path / "nope")]) == EXIT_USAGE
    assert "no such file" in capsys.readouterr().err


def test_main_rejects_unknown_checker(capsys):
    assert main(["--select", "NOPE99", "src"]) == EXIT_USAGE
    assert "unknown checker" in capsys.readouterr().err


def test_main_list_checkers(capsys):
    assert main(["--list-checkers"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for cls in ALL_CHECKERS:
        assert cls.code in out


def test_checker_codes_are_unique():
    codes = [cls.code for cls in ALL_CHECKERS]
    assert len(codes) == len(set(codes)) == 12


# -- the repo itself must be clean ----------------------------------------------


def test_repo_source_tree_is_clean():
    diagnostics, file_count = run_paths([REPO_ROOT / "src"])
    assert file_count > 50
    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)


def test_cli_subprocess_exits_clean_on_repo():
    env_src = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 issue(s) found" in result.stdout


# -- strict typing gate (runs only where mypy is installed) ---------------------


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_gate():
    result = subprocess.run(
        ["mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
