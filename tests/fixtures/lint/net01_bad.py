# Dirty: blocking socket operations with no deadline anywhere.
import socket


def make_blocking(sock):
    sock.settimeout(None)


def connect_no_timeout(host, port):
    return socket.create_connection((host, port))


def raw_connect(sock, address):
    sock.connect(address)


def read_forever(sock):
    return sock.recv(4096)


def accept_forever(listener):
    return listener.accept()
