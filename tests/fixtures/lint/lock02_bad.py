"""Fixture: cross-class lock-order cycle plus a lock held across I/O.

``Registry.add`` takes ``Registry._lock`` then calls into the journal,
which takes ``Journal._lock``; ``Journal.sweep`` takes the locks in the
opposite order through ``Registry.size`` — a transitive cycle no
single-file rule can see.  ``Sender.send`` additionally holds its lock
across a helper that performs a raw socket write.
"""

import threading


def push(sock, data):
    """Raw wire write (a LOCK02 blocking sink)."""
    sock.sendall(data)


class Registry:
    """Takes its own lock, then calls into the journal."""

    def __init__(self, journal: "Journal") -> None:
        self.journal = journal
        self._lock = threading.Lock()

    def add(self, name: str) -> None:
        with self._lock:
            self.journal.append(name)

    def size(self) -> int:
        with self._lock:
            return 0


class Journal:
    """Takes its own lock, then calls back into the registry."""

    def __init__(self, registry: Registry) -> None:
        self.registry = registry
        self._lock = threading.Lock()

    def append(self, name: str) -> None:
        with self._lock:
            pass

    def sweep(self) -> None:
        with self._lock:
            self.registry.size()


class Sender:
    """Serialises writes by holding its lock across the socket op."""

    def __init__(self) -> None:
        self._lock = threading.Lock()

    def send(self, sock, data) -> None:
        with self._lock:
            push(sock, data)
