"""RES01 fixture: every asyncio server object has a clear owner."""

import asyncio


class Door:
    """Stores the listener on a closeable owner — ownership rolls up."""

    def __init__(self):
        self.server = None

    async def open(self, handler):
        self.server = await asyncio.start_server(handler, "127.0.0.1", 0)

    def close(self):
        if self.server is not None:
            self.server.close()


async def scoped(handler):
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    async with server:
        pass


async def handed_back(handler):
    return await asyncio.start_server(handler, "127.0.0.1", 0)


async def closed_inline(handler):
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    server.close()
