"""Fixture: cross-class locking with one consistent order.

The registry still calls the journal under its lock, but the journal
never calls back while holding its own — the global graph is a DAG.
The sender snapshots under the lock and writes after releasing it.
"""

import threading


def push(sock, data):
    """Raw wire write (a LOCK02 blocking sink)."""
    sock.sendall(data)


class Registry:
    """Takes its own lock, then calls into the journal."""

    def __init__(self, journal: "Journal") -> None:
        self.journal = journal
        self._lock = threading.Lock()

    def add(self, name: str) -> None:
        with self._lock:
            self.journal.append(name)

    def size(self) -> int:
        with self._lock:
            return 0


class Journal:
    """Lock-leaf: never calls out while holding its lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[str] = []

    def append(self, name: str) -> None:
        with self._lock:
            self._entries.append(name)

    def sweep(self) -> int:
        with self._lock:
            count = len(self._entries)
        return count


class Sender:
    """Snapshots under the lock; writes with it released."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending = b""

    def send(self, sock) -> None:
        with self._lock:
            data = self._pending
        push(sock, data)
