"""RES01 fixture: asyncio server objects leaked by their creators."""

import asyncio


class Door:
    async def leak_local(self, handler):
        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        return port  # the port escapes; the listening server never does


async def dropped(handler):
    await asyncio.start_server(handler, "127.0.0.1", 0)


class Keeper:
    """Stores the listener on an owner that can never release it."""

    async def open(self, loop, factory):
        self.server = await loop.create_server(factory, "127.0.0.1", 0)
