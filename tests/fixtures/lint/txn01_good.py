# Clean transaction discipline: every path commits or aborts.


def with_statement(db):
    with db.transaction() as txn:
        db.table("cacheInfo").insert(txn, {"k": 1})


def explicit_lifecycle(db, ledger):
    txn = db.begin(ledger)
    try:
        table = db.table("cacheInfo")
        table.insert(txn, {"k": 1})
        table.update(txn, 1, {"k": 2})
        txn.commit()
    except Exception:
        txn.abort()
        raise


def finally_abort(db):
    txn = db.begin()
    try:
        txn.commit()
    finally:
        if txn.is_active:
            txn.abort()


def helper_takes_txn(txn, db):
    db.table("cacheData").insert(txn, {"k": 2})
