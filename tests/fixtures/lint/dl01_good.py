"""Fixture: the same fan-out with a caller-controllable budget.

``fanout`` accepts a ``timeout`` and the helper falls back to a
configured default — a deadline origin on every path to the socket, so
neither DL01 check fires.
"""

DEFAULT_TIMEOUT = 30.0


class Mediator:
    """Fixture request plane whose fan-out threads a budget."""

    def __init__(self, sock) -> None:
        self.sock = sock

    def fanout(self, payload: bytes, timeout: float | None = None) -> None:
        """Scatter the payload within the caller's budget."""
        self._push(payload, timeout)

    def _push(self, payload: bytes, timeout: float | None) -> None:
        budget = timeout if timeout is not None else DEFAULT_TIMEOUT
        self.sock.settimeout(budget)
        self.sock.sendall(payload)
