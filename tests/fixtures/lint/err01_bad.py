# Three ERR01 violations: bare except, swallowing broad catch,
# untyped raise.


def swallow_everything(job):
    try:
        job()
    except:  # noqa: E722
        pass


def swallow_broad(job):
    try:
        return job()
    except Exception:
        return None


def untyped_failure():
    raise Exception("boom")
