"""Fixture: a request-plane entry reaching a socket with no budget.

``Mediator.fanout`` (the fixture stands in for the real request plane)
calls a helper that writes to a raw socket; nothing on the path
constructs a ``Deadline``, reads a configured timeout, or lets the
caller pass one — both DL01 checks fire.
"""


class Mediator:
    """Fixture request plane with an unbudgeted fan-out."""

    def __init__(self, sock) -> None:
        self.sock = sock

    def fanout(self, payload: bytes) -> None:
        """Scatter the payload; can block forever."""
        self._push(payload)

    def _push(self, payload: bytes) -> None:
        self.sock.sendall(payload)
