# Clean: clocks via repro.obs.clock, output via report, spans with-managed.
from repro.obs import Stopwatch, report, tracing


def timed_work(items):
    with Stopwatch() as watch:
        with tracing.span("work.batch", category="compute") as span:
            span.set("items", len(items))
            total = sum(items)
    report("processed", len(items), "items in", watch.elapsed, "s")
    return total
