# Clean: parts stay a buffer list all the way to the vectored send.


def encode_parts(header_bytes, blobs):
    parts = [header_bytes]
    parts.extend(blobs)
    return parts


def total_length(parts):
    total = 0
    for part in parts:
        total += len(part)
    return total


def squeeze(compressor, parts):
    # Accumulating *compressed* output into a bytearray is fine: the
    # chunks are small and the name is not a wire-facing buffer.
    squeezed = bytearray()
    for part in parts:
        squeezed += compressor.compress(part)
    squeezed += compressor.flush()
    return squeezed


def control_plane_join(blobs):
    return b"".join(blobs)  # turblint: disable=NET02 - tiny handshake message
