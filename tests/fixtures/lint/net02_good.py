# Clean: parts stay a buffer list all the way to the vectored send.


def encode_parts(header_bytes, blobs):
    parts = [header_bytes]
    parts.extend(blobs)
    return parts


def total_length(parts):
    total = 0
    for part in parts:
        total += len(part)
    return total


def squeeze(compressor, parts):
    # Accumulating *compressed* output into a bytearray is fine: the
    # chunks are small and the name is not a wire-facing buffer.
    squeezed = bytearray()
    for part in parts:
        squeezed += compressor.compress(part)
    squeezed += compressor.flush()
    return squeezed


def control_plane_join(blobs):
    return b"".join(blobs)  # turblint: disable=NET02 - tiny handshake message


def probe_sample(view):
    # A bounded slice is not a full-payload copy.
    return bytes(view[:4096])


def keep_prefix(frame):
    # Copy only what outlives the view, under a non-wire name.
    kept = bytes(frame.payload[:20])
    return kept
