# Coefficient table, margins and DerivedField flags all agree.
from repro.fields.derived import DerivedField
from repro.fields.fd import (
    curl_interior,
    derivative_interior,
    gradient_tensor_interior,
    kernel_half_width,
)

CENTRAL_COEFFICIENTS = {
    2: (0.5,),
    4: (2.0 / 3.0, -1.0 / 12.0),
    6: (0.75, -0.15, 1.0 / 60.0),
}


def margin_via_binding(field, order):
    margin = kernel_half_width(order)
    return curl_interior(field, 0, 0, margin)


def margin_via_keyword(block, order):
    return gradient_tensor_interior(block, 0, 0, margin=kernel_half_width(order))


def margin_optional(field):
    return derivative_interior(field, 0)


def stencil_norm(block, order):
    return curl_interior(block, 0, 0, kernel_half_width(order))


def plain_norm(block):
    return (block * block).sum()


VORTICITY = DerivedField("vorticity", "u", 3, True, 4, stencil_norm)
ENERGY = DerivedField("energy", "u", 3, False, 0, plain_norm)
