# Five OBS01 violations: time import, from-time import, wall-clock call,
# bare print, and a span opened outside a with-statement.
import time
from time import perf_counter

from repro.obs import tracing


def stamp():
    return time.perf_counter()


def leaky(items):
    span = tracing.span("work.batch")
    print("processing", len(items), "items")
    return span, perf_counter
