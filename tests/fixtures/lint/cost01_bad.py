# Three COST01 violations: wall-clock import, wall-clock call,
# discarded device time.
import time
from time import perf_counter


def stamp():
    return time.time()


def discarded(spec):
    spec.read_time(4096)
    return perf_counter
