"""DL01 fixture: awaited socket ops with no asyncio deadline."""

import asyncio


class AsyncDoor:
    async def pump(self, reader, writer):
        line = await reader.readline()  # no wait_for/timeout: flagged
        writer.write(line)
        await writer.drain()  # flagged too

    async def siphon(self, reader):
        # A deadline armed around a *different* await does not cover
        # the naked one after the block.
        async with asyncio.timeout(5.0):
            head = await reader.readexactly(4)
        tail = await reader.read(1024)  # flagged
        return head, tail
