# Clean: every blocking socket operation is armed from a deadline.
import socket


def open_connection(host, port, deadline):
    return socket.create_connection(
        (host, port), timeout=deadline.remaining()
    )


def read_exactly(sock, count, deadline):
    chunks = []
    got = 0
    while got < count:
        sock.settimeout(deadline.remaining())
        chunk = sock.recv(count - got)
        if not chunk:
            break
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def accept_loop(listener, running):
    listener.settimeout(0.2)
    while running():
        try:
            conn, _address = listener.accept()
        except socket.timeout:
            continue
        yield conn


class Wrapper:
    def connect(self, deadline):
        # Defining (and calling) our own connect wrapper is fine: the
        # raw-socket rule only bars the socket method itself.
        self._sock = open_connection("localhost", 1, deadline)

    def reconnect(self, deadline):
        self.connect(deadline)
