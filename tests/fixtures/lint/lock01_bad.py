# Self-deadlock, a racy public mutation, and a lock-order cycle.
import threading


class SelfDeadlock:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def outer(self):
        with self._lock:
            with self._lock:
                self._count += 1

    def racy(self):
        self._count += 1


class OppositeOrders:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def forward(self):
        with self._a_lock:
            with self._b_lock:
                return 1

    def backward(self):
        with self._b_lock:
            with self._a_lock:
                return 2
