# Dirty: full-payload concatenation on the wire hot path.


def encode(header_bytes, blobs):
    payload = b"".join(blobs)
    return payload


def frame_up(header, payload):
    message = header + payload
    return message


def accumulate(parts):
    payload = b""
    for part in parts:
        payload += part
    return payload


def adopt(frame):
    # Materialising the whole zero-copy view: O(payload) memcpy.
    body = bytes(frame.payload)
    return body


def stash(blobs):
    return [blob.tobytes() for blob in blobs]
