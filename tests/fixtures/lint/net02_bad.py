# Dirty: full-payload concatenation on the wire hot path.


def encode(header_bytes, blobs):
    payload = b"".join(blobs)
    return payload


def frame_up(header, payload):
    message = header + payload
    return message


def accumulate(parts):
    payload = b""
    for part in parts:
        payload += part
    return payload
