# Five OBS01 violations in a server-path shape: a time import, a
# time.time() request stamp, a datetime.now() log stamp, a debugging
# print in the request loop, and a raw sys.stderr.write.
import sys
from datetime import datetime

from repro.obs import tracing


def answer_request(state, request_id, header):
    import time

    received = time.time()
    started = datetime.now()
    with tracing.span("server.request", method=header.get("method")):
        print("handling", request_id, "at", started)
    sys.stderr.write(f"done {request_id} in {received}\n")
