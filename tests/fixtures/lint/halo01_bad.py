# Six HALO01 violations: short coefficient row, odd order, hard-coded
# margin, missing margin, and both DerivedField flag mismatches.
from repro.fields.derived import DerivedField
from repro.fields.fd import curl_interior, kernel_half_width

BROKEN_COEFFICIENTS = {
    4: (1.0,),
    3: (1.0, 2.0),
}


def hard_coded_margin(field):
    return curl_interior(field, 0, 0, 2)


def missing_margin(field):
    return curl_interior(field, 0, 0)


def flat_norm(block):
    return abs(block)


def stencil_norm(block, order):
    return curl_interior(block, 0, 0, kernel_half_width(order))


PHANTOM_HALO = DerivedField("phantom", "u", 3, True, 4, flat_norm)
MISSING_HALO = DerivedField("missing", "u", 3, False, 4, stencil_norm)
