"""Fixture: closeable resources without owners (RES01).

Three leak shapes: created-and-dropped, bound to a local that is never
disposed of, and stored on an object that has no way to release it.
"""


class Channel:
    """A socket-owning resource."""

    def close(self) -> None:
        """Release the socket."""


def probe() -> None:
    """Creates a channel and immediately drops it."""
    Channel()


def scan() -> int:
    """Binds a channel to a local and never disposes of it."""
    chan = Channel()
    return 1


class Holder:
    """Stores a channel but has no close()/shutdown() to release it."""

    def __init__(self) -> None:
        self.chan = Channel()


class Segment:
    """A shared-memory-segment-owning resource (maps on construction)."""

    def close(self) -> None:
        """Unmap and unlink the segment."""


def attach() -> int:
    """Maps a segment and never unmaps it — the backing file leaks."""
    seg = Segment()
    return 0


def failover() -> Channel:
    """Dials a replacement replica but leaks the probe connection."""
    probe_chan = Channel()  # opened to health-check the replica
    replacement = Channel()
    return replacement
