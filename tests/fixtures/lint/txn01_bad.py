# Four distinct TXN01 violations, one per function.


def leak_discarded(db):
    db.begin()


def never_finished(db, work):
    txn = db.begin()
    work(txn)


def unprotected_commit(db, work):
    txn = db.begin()
    work(txn)
    txn.commit()


def untransacted_mutation(db):
    table = db.table("cacheInfo")
    table.insert({"k": 1})
