"""Fixture: every closeable creation has a clear owner (RES01).

Covers all accepted dispositions: context manager, explicit close,
return-to-caller, hand-off as an argument, and storage on an owner
that can itself release the resource.
"""


class Channel:
    """A socket-owning resource."""

    def close(self) -> None:
        """Release the socket."""


def consume(chan: Channel) -> None:
    """Takes ownership of a channel."""
    chan.close()


def probe() -> None:
    """Scopes the channel with a context manager."""
    with Channel():
        pass


def scan() -> int:
    """Closes the channel it created."""
    chan = Channel()
    try:
        return 1
    finally:
        chan.close()


def make() -> Channel:
    """Transfers ownership to the caller."""
    return Channel()


def relay() -> None:
    """Hands the channel to a function that takes ownership."""
    consume(Channel())


class Owner:
    """Stores the channel and can release it."""

    def __init__(self) -> None:
        self.chan = Channel()

    def close(self) -> None:
        """Release the owned channel."""
        self.chan.close()


class Segment:
    """A shared-memory-segment-owning resource (maps on construction)."""

    def close(self) -> None:
        """Unmap and unlink the segment."""


def grant() -> Segment:
    """Transfers segment ownership to the connection that advertises it."""
    return Segment()


def serve_one() -> None:
    """Scopes the mapping to the request."""
    with Segment():
        pass


class ReplicaRouter:
    """Owns one channel per replica, built in bulk, released in bulk."""

    def __init__(self, replicas: int) -> None:
        self.channels = [Channel() for _ in range(replicas)]
        self.rings: dict[int, Segment] = {}
        for shard in range(replicas):
            self.rings[shard] = Segment()

    def close(self) -> None:
        """Release every owned channel and mapped segment."""
        for chan in self.channels:
            chan.close()
        for ring in self.rings.values():
            ring.close()


def reroute(router: ReplicaRouter) -> None:
    """A failover path that scopes its probe connection."""
    with Channel():
        pass
