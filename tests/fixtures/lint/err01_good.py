# Typed errors only; broad catches re-raise.
from repro.storage.errors import SerializationConflictError, TransactionError


def retry_on_conflict(job):
    try:
        return job()
    except SerializationConflictError:
        return None


def wrap_unexpected(job):
    try:
        return job()
    except Exception as error:
        raise TransactionError(str(error)) from error
