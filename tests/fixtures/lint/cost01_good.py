# Device times are charged to the ledger; no wall-clock reads.


def charge_read(spec, ledger, category):
    seconds = spec.read_time(4096, seeks=1)
    ledger.charge(category, seconds)
    return seconds


def charge_inline(spec, ledger, category):
    ledger.charge(category, spec.write_time(8192))
