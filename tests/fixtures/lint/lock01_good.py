# Guarded mutations and a single consistent lock order.
import threading


class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def _bump_already_locked(self):
        self._count += 1


class Ordered:
    def __init__(self):
        self._first_lock = threading.Lock()
        self._second_lock = threading.Lock()

    def both(self):
        with self._first_lock:
            with self._second_lock:
                return True
