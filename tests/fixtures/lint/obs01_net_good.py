# Clean server path: clock via repro.obs.clock, output via report,
# request spans with-managed.
from repro.obs import clock, report, tracing


def answer_request(state, request_id, header):
    received = clock.now()
    with tracing.span("server.request", method=header.get("method")) as span:
        span.set("request_id", request_id)
    report(f"answered {request_id} in {clock.now() - received:.3f}s")
