"""DL01 fixture: every awaited socket op sits under a deadline."""

import asyncio


class AsyncDoor:
    async def pump(self, reader, writer):
        line = await asyncio.wait_for(reader.readline(), 5.0)
        writer.write(line)
        async with asyncio.timeout(5.0):
            await writer.drain()

    async def siphon(self, reader):
        async with asyncio.timeout_at(99.0):
            head = await reader.readexactly(4)
            tail = await reader.read(1024)
        return head, tail

    async def idle(self, queue):
        # Non-socket awaits need no deadline: the queue drains at the
        # door's own pace, not a peer's.
        return await queue.get()
