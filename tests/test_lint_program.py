"""turbscan call-graph builder tests over synthetic module sets.

Each test builds a tiny multi-module "project" from inline source and
checks that the :class:`~repro.lint.program.Program` model resolves the
right edges: cross-module imports, ``self``-method calls, attribute
receivers, virtual dispatch, spawn hand-offs and path queries.
"""

from repro.lint import SourceFile
from repro.lint.program import Program


def make(module: str, text: str) -> SourceFile:
    """A synthetic SourceFile under a dotted module name."""
    path = "/synthetic/" + module.replace(".", "/") + ".py"
    return SourceFile(path, module, text=text)


def edge_pairs(program: Program, kind: str | None = None):
    """``(caller, callee)`` pairs, optionally filtered by edge kind."""
    return {
        (edge.caller, edge.callee)
        for edge in program.edges
        if kind is None or edge.kind == kind
    }


def test_cross_module_call_edge():
    alpha = make(
        "repro.alpha",
        '"""A."""\n\ndef helper():\n    return 1\n',
    )
    beta = make(
        "repro.beta",
        '"""B."""\n\nfrom repro.alpha import helper\n\n'
        "def caller():\n    return helper()\n",
    )
    program = Program([alpha, beta])
    assert ("repro.beta.caller", "repro.alpha.helper") in edge_pairs(
        program, "call"
    )


def test_relative_import_resolves():
    alpha = make(
        "repro.pkg.alpha",
        '"""A."""\n\ndef helper():\n    return 1\n',
    )
    beta = make(
        "repro.pkg.beta",
        '"""B."""\n\nfrom .alpha import helper\n\n'
        "def caller():\n    return helper()\n",
    )
    program = Program([alpha, beta])
    assert (
        "repro.pkg.beta.caller",
        "repro.pkg.alpha.helper",
    ) in edge_pairs(program, "call")


def test_self_method_call_edge():
    source = make(
        "repro.alpha",
        '"""A."""\n\n'
        "class Engine:\n"
        '    """E."""\n\n'
        "    def run(self):\n"
        "        self.step()\n\n"
        "    def step(self):\n"
        "        pass\n",
    )
    program = Program([source])
    assert (
        "repro.alpha.Engine.run",
        "repro.alpha.Engine.step",
    ) in edge_pairs(program, "call")


def test_attribute_receiver_resolved_from_init_assignment():
    source = make(
        "repro.alpha",
        '"""A."""\n\n'
        "class Worker:\n"
        '    """W."""\n\n'
        "    def go(self):\n"
        "        pass\n\n"
        "class Boss:\n"
        '    """B."""\n\n'
        "    def __init__(self):\n"
        "        self.worker = Worker()\n\n"
        "    def delegate(self):\n"
        "        self.worker.go()\n",
    )
    program = Program([source])
    assert (
        "repro.alpha.Boss.delegate",
        "repro.alpha.Worker.go",
    ) in edge_pairs(program, "call")


def test_virtual_dispatch_reaches_overrides():
    source = make(
        "repro.alpha",
        '"""A."""\n\n'
        "class Transport:\n"
        '    """T."""\n\n'
        "    def send(self):\n"
        "        pass\n\n"
        "class TcpTransport(Transport):\n"
        '    """T."""\n\n'
        "    def send(self):\n"
        "        pass\n\n"
        "def use(transport: Transport):\n"
        "    transport.send()\n",
    )
    program = Program([source])
    pairs = edge_pairs(program, "call")
    assert ("repro.alpha.use", "repro.alpha.Transport.send") in pairs
    assert ("repro.alpha.use", "repro.alpha.TcpTransport.send") in pairs


def test_submit_and_thread_target_are_spawn_edges():
    source = make(
        "repro.alpha",
        '"""A."""\n\n'
        "import threading\n\n"
        "class Runner:\n"
        '    """R."""\n\n'
        "    def work(self):\n"
        "        pass\n\n"
        "    def fan_out(self, pool):\n"
        "        pool.submit(self.work)\n"
        "        threading.Thread(target=self.work).start()\n",
    )
    program = Program([source])
    spawns = edge_pairs(program, "spawn")
    assert ("repro.alpha.Runner.fan_out", "repro.alpha.Runner.work") in spawns
    assert not any(
        pair == ("repro.alpha.Runner.fan_out", "repro.alpha.Runner.work")
        for pair in edge_pairs(program, "call")
    )


def test_nested_function_bodies_are_deferred():
    source = make(
        "repro.alpha",
        '"""A."""\n\n'
        "def leaf():\n"
        "    pass\n\n"
        "def outer():\n"
        "    def inner():\n"
        "        leaf()\n"
        "    return inner\n",
    )
    program = Program([source])
    assert ("repro.alpha.outer", "repro.alpha.leaf") in edge_pairs(
        program, "spawn"
    )


def test_reachability_and_spawn_filtering():
    source = make(
        "repro.alpha",
        '"""A."""\n\n'
        "def sink():\n"
        "    pass\n\n"
        "def sync_caller():\n"
        "    sink()\n\n"
        "def spawner(pool):\n"
        "    pool.submit(sink)\n",
    )
    program = Program([source])
    everyone = program.reverse_reachable({"repro.alpha.sink"})
    assert "repro.alpha.sync_caller" in everyone
    assert "repro.alpha.spawner" in everyone
    sync_only = program.reverse_reachable({"repro.alpha.sink"}, spawn=False)
    assert "repro.alpha.sync_caller" in sync_only
    assert "repro.alpha.spawner" not in sync_only


def test_find_path_respects_avoid():
    source = make(
        "repro.alpha",
        '"""A."""\n\n'
        "def c():\n"
        "    pass\n\n"
        "def b():\n"
        "    c()\n\n"
        "def a():\n"
        "    b()\n",
    )
    program = Program([source])
    path = program.find_path("repro.alpha.a", {"repro.alpha.c"})
    assert path is not None
    assert [edge.callee for edge in path] == [
        "repro.alpha.b",
        "repro.alpha.c",
    ]
    blocked = program.find_path(
        "repro.alpha.a",
        {"repro.alpha.c"},
        avoid=frozenset({"repro.alpha.b"}),
    )
    assert blocked is None


def test_callees_at_indexes_call_sites():
    source = make(
        "repro.alpha",
        '"""A."""\n\n'
        "def helper():\n"
        "    pass\n\n"
        "def caller():\n"
        "    helper()\n",
    )
    program = Program([source])
    assert program.callees_at("repro.alpha.caller", 7) == {
        "repro.alpha.helper"
    }


def test_instantiations_recorded():
    source = make(
        "repro.alpha",
        '"""A."""\n\n'
        "class Widget:\n"
        '    """W."""\n\n'
        "    def close(self):\n"
        "        pass\n\n"
        "def build():\n"
        "    return Widget()\n",
    )
    program = Program([source])
    sites = {
        (site.function, site.cls) for site in program.instantiations
    }
    assert ("repro.alpha.build", "repro.alpha.Widget") in sites
