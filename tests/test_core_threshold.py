"""End-to-end tests of threshold-query evaluation (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import MAX_RESULT_POINTS, ThresholdQuery, ThresholdTooLowError
from repro.costmodel import Category
from repro.fields import curl_periodic
from repro.grid import Box
from repro.morton import encode_array


def ground_truth_norm(dataset, field, timestep, order=4):
    data = dataset.field_array(
        "velocity" if field in ("vorticity", "q_criterion") else field, timestep
    ).astype(np.float64)
    if field == "vorticity":
        return np.linalg.norm(curl_periodic(data, dataset.spec.spacing, order), axis=-1)
    if field == "magnetic":
        return np.linalg.norm(data, axis=-1)
    raise NotImplementedError(field)


class TestCorrectness:
    @pytest.mark.parametrize("field", ["vorticity", "magnetic"])
    def test_matches_ground_truth(self, small_mhd, mhd_cluster, field):
        norm = ground_truth_norm(small_mhd, field, 0)
        threshold = float(np.quantile(norm, 0.999))
        result = mhd_cluster.threshold(
            ThresholdQuery("mhd", field, 0, threshold)
        )
        mask = norm >= threshold
        assert len(result) == mask.sum()
        ix, iy, iz = np.nonzero(mask)
        assert np.array_equal(
            result.zindexes, np.sort(encode_array(ix, iy, iz))
        )
        assert np.allclose(np.sort(result.values), np.sort(norm[mask]), atol=1e-5)

    def test_box_query_restricts_region(self, small_mhd, mhd_cluster):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        threshold = float(np.quantile(norm, 0.99))
        box = Box((4, 4, 4), (20, 24, 28))
        result = mhd_cluster.threshold(
            ThresholdQuery("mhd", "vorticity", 0, threshold, box=box)
        )
        sub = norm[4:20, 4:24, 4:28]
        assert len(result) == (sub >= threshold).sum()
        coords = result.coordinates()
        assert (coords >= [4, 4, 4]).all()
        assert (coords < [20, 24, 28]).all()

    @pytest.mark.parametrize("processes", [1, 2, 4])
    def test_result_independent_of_process_count(self, small_mhd, mhd_cluster, processes):
        norm = ground_truth_norm(small_mhd, "vorticity", 1)
        threshold = float(np.quantile(norm, 0.995))
        mhd_cluster.drop_cache_entries("mhd", "vorticity", 1)
        result = mhd_cluster.threshold(
            ThresholdQuery("mhd", "vorticity", 1, threshold),
            processes=processes, use_cache=False,
        )
        assert len(result) == (norm >= threshold).sum()

    @pytest.mark.parametrize("order", [2, 4, 6, 8])
    def test_fd_orders(self, small_mhd, mhd_cluster, order):
        norm = ground_truth_norm(small_mhd, "vorticity", 0, order)
        threshold = float(np.quantile(norm, 0.999))
        result = mhd_cluster.threshold(
            ThresholdQuery("mhd", "vorticity", 0, threshold, fd_order=order),
            use_cache=False,
        )
        assert len(result) == (norm >= threshold).sum()

    def test_nothing_above_huge_threshold(self, mhd_cluster):
        result = mhd_cluster.threshold(
            ThresholdQuery("mhd", "vorticity", 0, 1e12), use_cache=False
        )
        assert len(result) == 0

    def test_query_validation(self):
        with pytest.raises(ValueError):
            ThresholdQuery("mhd", "vorticity", 0, -1.0)
        with pytest.raises(ValueError):
            ThresholdQuery("mhd", "vorticity", -1, 1.0)
        with pytest.raises(ValueError):
            ThresholdQuery("mhd", "vorticity", 0, 1.0, fd_order=5)


class TestCacheBehaviour:
    def test_second_query_hits_cache(self, small_mhd, mhd_cluster):
        query = ThresholdQuery("mhd", "vorticity", 0, 2.0)
        first = mhd_cluster.threshold(query)
        assert first.cache_hits == 0
        second = mhd_cluster.threshold(query)
        assert second.cache_hits == len(mhd_cluster.nodes)
        assert np.array_equal(first.zindexes, second.zindexes)
        assert np.allclose(first.values, second.values)

    def test_hit_skips_io_and_compute(self, mhd_cluster):
        query = ThresholdQuery("mhd", "vorticity", 0, 2.0)
        mhd_cluster.threshold(query)
        mhd_cluster.drop_page_caches()
        hit = mhd_cluster.threshold(query)
        assert hit.ledger[Category.IO] == 0.0
        assert hit.ledger[Category.COMPUTE] == 0.0
        assert hit.ledger[Category.CACHE_LOOKUP] > 0.0

    def test_higher_threshold_reuses_cache(self, small_mhd, mhd_cluster):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        low = float(np.quantile(norm, 0.99))
        high = float(np.quantile(norm, 0.999))
        mhd_cluster.threshold(ThresholdQuery("mhd", "vorticity", 0, low))
        result = mhd_cluster.threshold(ThresholdQuery("mhd", "vorticity", 0, high))
        assert result.cache_hits == len(mhd_cluster.nodes)
        assert len(result) == (norm >= high).sum()

    def test_lower_threshold_recomputes_and_updates(self, small_mhd, mhd_cluster):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        low = float(np.quantile(norm, 0.99))
        high = float(np.quantile(norm, 0.999))
        mhd_cluster.threshold(ThresholdQuery("mhd", "vorticity", 0, high))
        refreshed = mhd_cluster.threshold(ThresholdQuery("mhd", "vorticity", 0, low))
        assert refreshed.cache_hits == 0
        assert len(refreshed) == (norm >= low).sum()
        # The refresh replaced the stale entries; the low threshold now hits.
        again = mhd_cluster.threshold(ThresholdQuery("mhd", "vorticity", 0, low))
        assert again.cache_hits == len(mhd_cluster.nodes)

    def test_sub_box_query_served_from_full_entry(self, small_mhd, mhd_cluster):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        threshold = float(np.quantile(norm, 0.99))
        mhd_cluster.threshold(ThresholdQuery("mhd", "vorticity", 0, threshold))
        box = Box((0, 0, 0), (16, 16, 16))  # inside node 0+1's octants
        result = mhd_cluster.threshold(
            ThresholdQuery("mhd", "vorticity", 0, threshold, box=box)
        )
        sub = norm[:16, :16, :16]
        assert len(result) == (sub >= threshold).sum()
        assert result.ledger[Category.IO] == 0.0  # pure cache hit

    def test_no_cache_mode_never_hits(self, mhd_cluster):
        query = ThresholdQuery("mhd", "vorticity", 0, 2.0)
        mhd_cluster.threshold(query)
        mhd_cluster.drop_page_caches()
        result = mhd_cluster.threshold(query, use_cache=False)
        assert result.cache_hits == 0
        assert result.ledger[Category.IO] > 0

    def test_cache_hit_ledger_much_faster(self, small_mhd, mhd_cluster):
        """The headline claim: hits are ~an order of magnitude faster in
        simulated time.

        Uses a paper-like selectivity (~0.1% of points); the speedup
        claim is about small result sets, which is the regime the
        result-size limit enforces anyway.  The margin is 8x rather
        than a strict 10x: the combined per-query halo prefetch
        deduplicates boundary atoms across boxes, which shrinks the
        miss's simulated transfer cost too.
        """
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        threshold = float(np.quantile(norm, 0.999))
        query = ThresholdQuery("mhd", "vorticity", 0, threshold)
        mhd_cluster.drop_cache_entries("mhd", "vorticity", 0)
        mhd_cluster.drop_page_caches()
        miss = mhd_cluster.threshold(query)
        mhd_cluster.drop_page_caches()
        hit = mhd_cluster.threshold(query)
        assert hit.cache_hits == len(mhd_cluster.nodes)
        server_miss = miss.elapsed - miss.ledger[Category.MEDIATOR_USER]
        server_hit = hit.elapsed - hit.ledger[Category.MEDIATOR_USER]
        assert server_miss > 8 * server_hit


class TestLimits:
    def test_threshold_too_low_raises(self, mhd_cluster):
        with pytest.raises(ThresholdTooLowError) as info:
            mhd_cluster.threshold(
                ThresholdQuery("mhd", "vorticity", 0, 0.0),
                use_cache=False,
                max_points=1000,
            )
        assert info.value.points_found == 32**3
        assert info.value.limit == 1000

    def test_default_limit_is_paper_value(self):
        assert MAX_RESULT_POINTS == 1_000_000


class TestIoOnly:
    def test_io_only_reads_but_returns_nothing(self, mhd_cluster):
        mhd_cluster.drop_page_caches()
        result = mhd_cluster.threshold(
            ThresholdQuery("mhd", "vorticity", 0, 2.0),
            use_cache=False, io_only=True,
        )
        assert len(result) == 0
        assert result.ledger[Category.IO] > 0
        assert result.ledger[Category.COMPUTE] == 0.0
