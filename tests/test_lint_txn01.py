"""TXN01 (transaction discipline) checker tests."""

from repro.lint.checkers.txn01 import TxnDiscipline

from tests.lint_helpers import load, run_checker


def test_clean_fixture_passes():
    source = load("txn01_good.py", "repro.storage.fixture_good")
    assert run_checker(TxnDiscipline(), source) == []


def test_bad_fixture_reports_each_violation():
    source = load("txn01_bad.py", "repro.storage.fixture_bad")
    diags = run_checker(TxnDiscipline(), source)
    assert len(diags) == 4
    assert all(d.code == "TXN01" for d in diags)
    messages = "\n".join(d.message for d in diags)
    assert "immediately discarded" in messages
    assert "never committed or aborted" in messages
    assert "unprotected" in messages
    assert "outside a transaction" in messages


def test_out_of_scope_module_is_skipped():
    checker = TxnDiscipline()
    assert not checker.applies("repro.fields.fd")
    assert not checker.applies("repro.harness.bench")
    assert checker.applies("repro.storage.mvcc")
    assert checker.applies("repro.core.threshold")


def test_core_engine_modules_are_clean():
    checker = TxnDiscipline()
    sources = [
        load_real(name)
        for name in (
            "src/repro/core/threshold.py",
            "src/repro/core/batch.py",
            "src/repro/core/pdf.py",
            "src/repro/core/cache.py",
        )
    ]
    assert run_checker(checker, *sources) == []


def load_real(rel: str):
    from pathlib import Path

    from repro.lint import SourceFile
    from repro.lint.cli import module_name_for

    path = Path(__file__).parent.parent / rel
    return SourceFile(path, module_name_for(path))
