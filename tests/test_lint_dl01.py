"""DL01: deadline propagation from entry points to socket sinks."""

from repro.lint.checkers import DeadlinePropagation

from tests.lint_helpers import load, run_program_checker


def test_bad_fixture_flags_both_checks():
    diags = run_program_checker(
        DeadlinePropagation(),
        load("dl01_bad.py", "repro.cluster.fixture_dl01"),
    )
    messages = [d.message for d in diags]
    assert any("without passing any deadline origin" in m for m in messages), (
        messages
    )
    assert any("accepts no timeout/deadline" in m for m in messages), messages


def test_good_fixture_is_clean():
    diags = run_program_checker(
        DeadlinePropagation(),
        load("dl01_good.py", "repro.cluster.fixture_dl01"),
    )
    assert diags == []


def test_entry_scope_is_class_and_module_gated():
    # The same bad code outside repro.cluster/repro.net is not an entry.
    diags = run_program_checker(
        DeadlinePropagation(),
        load("dl01_bad.py", "repro.storage.fixture_dl01"),
    )
    assert diags == []


def test_aio_bad_fixture_flags_every_naked_await():
    diags = run_program_checker(
        DeadlinePropagation(),
        load("dl01_aio_bad.py", "repro.net.fixture_dl01aio"),
    )
    messages = [d.message for d in diags]
    assert len(messages) == 3, messages
    assert all("carries no deadline origin" in m for m in messages)
    flagged = {m.split(".")[1].split("(")[0] for m in messages}
    assert flagged == {"readline", "drain", "read"}, messages


def test_aio_good_fixture_is_clean():
    diags = run_program_checker(
        DeadlinePropagation(),
        load("dl01_aio_good.py", "repro.net.fixture_dl01aio"),
    )
    assert diags == []


def test_aio_awaits_outside_repro_net_are_ignored():
    diags = run_program_checker(
        DeadlinePropagation(),
        load("dl01_aio_bad.py", "repro.cluster.fixture_dl01aio"),
    )
    assert diags == []
