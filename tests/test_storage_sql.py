"""Tests for the SQL tokenizer, parser and executor."""

import pytest

from repro.costmodel import Category
from repro.costmodel.devices import SsdSpec
from repro.storage import (
    Column,
    ColumnType,
    Database,
    SqlError,
    StorageDevice,
    TableSchema,
)
from repro.storage.sql import Condition, parse, tokenize


@pytest.fixture
def db():
    database = Database()
    database.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))
    database.create_table(
        TableSchema(
            "cacheInfo",
            (
                Column("ordinal", ColumnType.INTEGER),
                Column("dataset", ColumnType.TEXT),
                Column("field", ColumnType.TEXT),
                Column("timestep", ColumnType.INTEGER),
                Column("threshold", ColumnType.FLOAT),
            ),
            primary_key=("ordinal",),
            indexes={"by_query": ("dataset", "field", "timestep")},
        ),
        device="ssd",
    )
    database.create_table(
        TableSchema(
            "cacheData",
            (
                Column("cacheInfoOrdinal", ColumnType.INTEGER),
                Column("zindex", ColumnType.BIGINT),
                Column("dataValue", ColumnType.FLOAT),
            ),
            primary_key=("cacheInfoOrdinal", "zindex"),
        ),
        device="ssd",
    )
    with database.transaction() as txn:
        for i, (ds, f, t, k) in enumerate(
            [
                ("mhd", "vorticity", 0, 44.0),
                ("mhd", "vorticity", 1, 60.0),
                ("mhd", "q", 0, 10.0),
                ("iso", "vorticity", 0, 30.0),
            ]
        ):
            database.sql(
                txn,
                "INSERT INTO cacheInfo (ordinal, dataset, field, timestep, threshold)"
                " VALUES (?, ?, ?, ?, ?)",
                [i, ds, f, t, k],
            )
    return database


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT * FROM t WHERE a = 5")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "punct", "keyword", "ident", "keyword", "ident", "op", "number"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("SELECT * FROM t WHERE a = 'it''s'")
        assert tokens[-1].text == "'it''s'"

    def test_qualified_name(self):
        tokens = tokenize("SELECT * FROM cachedb..cacheInfo")
        assert tokens[-1].text == "cachedb..cacheInfo"

    def test_junk_rejected(self):
        with pytest.raises(SqlError):
            tokenize("SELECT # FROM t")

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select * from t")
        assert tokens[0].kind == "keyword" and tokens[0].text == "SELECT"


class TestParser:
    def test_select_star(self):
        stmt, nparams = parse("SELECT * FROM cacheInfo")
        assert stmt.columns is None and stmt.table == "cacheInfo"
        assert nparams == 0

    def test_select_columns_where_order_limit(self):
        stmt, _ = parse(
            "SELECT a, b FROM t WHERE x = 1 AND y >= 2.5 ORDER BY a DESC LIMIT 10"
        )
        assert stmt.columns == ["a", "b"]
        assert stmt.where == [Condition("x", "=", 1), Condition("y", ">=", 2.5)]
        assert stmt.order_by == "a" and stmt.descending
        assert stmt.limit == 10

    def test_qualified_table_resolves_last_component(self):
        stmt, _ = parse("SELECT * FROM cachedb..cacheInfo")
        assert stmt.table == "cacheInfo"

    def test_parameters_counted(self):
        _, nparams = parse("SELECT * FROM t WHERE a = ? AND b = ?")
        assert nparams == 2

    def test_insert(self):
        stmt, _ = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert stmt.columns == ["a", "b"] and stmt.values == [1, "x"]

    def test_insert_count_mismatch(self):
        with pytest.raises(SqlError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        stmt, _ = parse("UPDATE t SET a = 1, b = 'z' WHERE c = 2")
        assert stmt.assignments == {"a": 1, "b": "z"}

    def test_delete(self):
        stmt, _ = parse("DELETE FROM t WHERE a != 3")
        assert stmt.where == [Condition("a", "!=", 3)]

    def test_null_literal(self):
        stmt, _ = parse("SELECT * FROM t WHERE a = NULL")
        assert stmt.where[0].value is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT * FROM t extra")

    def test_unsupported_statement(self):
        with pytest.raises(SqlError):
            parse("DROP TABLE t")
        with pytest.raises(SqlError):
            parse("SELECT * FROM t WHERE")

    def test_negative_limit_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT * FROM t LIMIT -1")

    def test_scientific_float(self):
        stmt, _ = parse("SELECT * FROM t WHERE a > 1.5e3")
        assert stmt.where[0].value == 1500.0


class TestExecutor:
    def run(self, db, text, params=()):
        with db.transaction() as txn:
            return db.sql(txn, text, params)

    def test_select_all(self, db):
        rows = self.run(db, "SELECT * FROM cacheInfo")
        assert len(rows) == 4

    def test_point_lookup_by_pk(self, db):
        rows = self.run(db, "SELECT * FROM cacheInfo WHERE ordinal = 2")
        assert len(rows) == 1 and rows[0]["field"] == "q"

    def test_secondary_index_path(self, db):
        rows = self.run(
            db,
            "SELECT * FROM cacheInfo WHERE dataset = ? AND field = ? AND timestep = ?",
            ["mhd", "vorticity", 1],
        )
        assert len(rows) == 1 and rows[0]["threshold"] == 60.0

    def test_residual_filter(self, db):
        rows = self.run(
            db, "SELECT * FROM cacheInfo WHERE dataset = 'mhd' AND threshold < 50"
        )
        assert [r["ordinal"] for r in rows] == [0, 2]

    def test_projection(self, db):
        rows = self.run(db, "SELECT dataset, threshold FROM cacheInfo WHERE ordinal = 0")
        assert rows == [{"dataset": "mhd", "threshold": 44.0}]

    def test_order_by_desc_limit(self, db):
        rows = self.run(
            db, "SELECT ordinal FROM cacheInfo ORDER BY threshold DESC LIMIT 2"
        )
        assert [r["ordinal"] for r in rows] == [1, 0]

    def test_qualified_table_name(self, db):
        rows = self.run(db, "SELECT * FROM cachedb..cacheInfo WHERE ordinal = 0")
        assert len(rows) == 1

    def test_insert_via_sql(self, db):
        count = self.run(
            db,
            "INSERT INTO cacheInfo (ordinal, dataset, field, timestep, threshold)"
            " VALUES (9, 'mhd', 'current', 5, 12.0)",
        )
        assert count == 1
        rows = self.run(db, "SELECT * FROM cacheInfo WHERE ordinal = 9")
        assert rows[0]["field"] == "current"

    def test_update_via_sql(self, db):
        count = self.run(db, "UPDATE cacheInfo SET threshold = 99.0 WHERE dataset = 'mhd'")
        assert count == 3
        rows = self.run(db, "SELECT * FROM cacheInfo WHERE dataset = 'iso'")
        assert rows[0]["threshold"] == 30.0

    def test_delete_via_sql(self, db):
        count = self.run(db, "DELETE FROM cacheInfo WHERE timestep = 0")
        assert count == 3
        assert len(self.run(db, "SELECT * FROM cacheInfo")) == 1

    def test_pk_prefix_range_scan(self, db):
        with db.transaction() as txn:
            for z in range(5):
                db.sql(
                    txn,
                    "INSERT INTO cacheData (cacheInfoOrdinal, zindex, dataValue)"
                    " VALUES (?, ?, ?)",
                    [0, z, float(z)],
                )
                db.sql(
                    txn,
                    "INSERT INTO cacheData (cacheInfoOrdinal, zindex, dataValue)"
                    " VALUES (?, ?, ?)",
                    [1, z, float(z)],
                )
        rows = self.run(db, "SELECT * FROM cacheData WHERE cacheInfoOrdinal = 1")
        assert len(rows) == 5
        assert all(r["cacheInfoOrdinal"] == 1 for r in rows)

    def test_missing_params_rejected(self, db):
        with pytest.raises(SqlError):
            self.run(db, "SELECT * FROM cacheInfo WHERE ordinal = ?")

    def test_null_comparison_matches_nothing(self, db):
        rows = self.run(db, "SELECT * FROM cacheInfo WHERE dataset = NULL")
        assert rows == []

    def test_string_comparison_operators(self, db):
        rows = self.run(db, "SELECT * FROM cacheInfo WHERE dataset > 'iso'")
        assert len(rows) == 3

    def test_float_successor_range(self, db):
        # Equality on a FLOAT pk-prefix must not skip adjacent values.
        rows = self.run(db, "SELECT * FROM cacheInfo WHERE threshold = 44.0")
        assert len(rows) == 1


class TestAggregates:
    def run(self, db, text, params=()):
        with db.transaction() as txn:
            return db.sql(txn, text, params)

    def test_count_star(self, db):
        assert self.run(db, "SELECT COUNT(*) FROM cacheInfo") == 4

    def test_count_star_with_where(self, db):
        total = self.run(
            db, "SELECT COUNT(*) FROM cacheInfo WHERE dataset = 'mhd'"
        )
        assert total == 3

    def test_sum(self, db):
        total = self.run(
            db, "SELECT SUM(threshold) FROM cacheInfo WHERE dataset = 'mhd'"
        )
        assert total == pytest.approx(44.0 + 60.0 + 10.0)

    def test_min_max_avg(self, db):
        assert self.run(db, "SELECT MIN(threshold) FROM cacheInfo") == 10.0
        assert self.run(db, "SELECT MAX(threshold) FROM cacheInfo") == 60.0
        assert self.run(db, "SELECT AVG(threshold) FROM cacheInfo") == pytest.approx(36.0)

    def test_aggregate_over_empty_set(self, db):
        assert self.run(
            db, "SELECT SUM(threshold) FROM cacheInfo WHERE dataset = 'none'"
        ) is None
        assert self.run(
            db, "SELECT COUNT(*) FROM cacheInfo WHERE dataset = 'none'"
        ) == 0

    def test_sum_star_rejected(self, db):
        with pytest.raises(SqlError):
            self.run(db, "SELECT SUM(*) FROM cacheInfo")

    def test_aggregate_name_case_insensitive(self, db):
        assert self.run(db, "SELECT count(*) FROM cacheInfo") == 4


class TestExplain:
    def test_pk_lookup(self, db):
        from repro.storage.sql import explain

        plan = explain(db, "SELECT * FROM cacheInfo WHERE ordinal = 1")
        assert plan["access"] == "pk_lookup"
        assert plan["residual"] == 0

    def test_index_lookup(self, db):
        from repro.storage.sql import explain

        plan = explain(
            db,
            "SELECT * FROM cacheInfo WHERE dataset = ? AND field = ?"
            " AND timestep = ? AND threshold > 5",
        )
        assert plan["access"] == "index_lookup"
        assert plan["index"] == "by_query"
        assert plan["residual"] == 1

    def test_pk_range_scan(self, db):
        from repro.storage.sql import explain

        plan = explain(db, "SELECT * FROM cacheData WHERE cacheInfoOrdinal = 3")
        assert plan["access"] == "pk_range_scan"

    def test_full_scan(self, db):
        from repro.storage.sql import explain

        plan = explain(db, "SELECT * FROM cacheInfo WHERE threshold > 5")
        assert plan["access"] == "full_scan"
        assert plan["residual"] == 1

    def test_delete_and_update_explainable(self, db):
        from repro.storage.sql import explain

        assert explain(db, "DELETE FROM cacheInfo WHERE ordinal = 1")[
            "access"
        ] == "pk_lookup"
        assert explain(db, "UPDATE cacheInfo SET threshold = 1 WHERE ordinal = 2")[
            "access"
        ] == "pk_lookup"

    def test_insert_rejected(self, db):
        from repro.storage.sql import explain

        with pytest.raises(SqlError):
            explain(db, "INSERT INTO cacheInfo (ordinal) VALUES (1)")
