"""Cross-process trace stitching: contexts, grafting, skew, orphans.

These tests exercise the wire-level trace plumbing without sockets: a
"remote" process is simulated by :func:`tracing.remote_request` (which
is exactly what the node server installs per request), its captured
spans travel as the same JSON records the response header carries, and
the "mediator" side grafts them back with :func:`tracing.absorb_remote`.
"""

import contextvars

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import Category, CostLedger
from repro.obs import tracing
from repro.obs.tracing import Span, SpanContext, TraceCollector


@pytest.fixture()
def collector():
    installed = tracing.install(TraceCollector())
    yield installed
    tracing.uninstall()


class TestSpanContext:
    def test_wire_round_trip(self):
        context = SpanContext("q000007", 42, True)
        wired = context.to_wire()
        back = SpanContext.from_wire(wired)
        assert back is not None
        assert (back.trace_id, back.span_id, back.sampled) == (
            "q000007", 42, True,
        )

    @pytest.mark.parametrize(
        "record",
        [None, 7, "q1", [], {}, {"trace_id": "q1"}, {"span_id": 3}],
    )
    def test_malformed_records_yield_none(self, record):
        assert SpanContext.from_wire(record) is None

    def test_current_context_follows_the_open_span(self, collector):
        assert tracing.current_context() is None
        with tracing.span("root", trace_id="q_ctx") as root:
            context = tracing.current_context()
            assert context is not None
            assert context.trace_id == "q_ctx"
            assert context.span_id == root.span_id
            assert context.sampled
        assert tracing.current_context() is None

    def test_sampling_kill_switch(self, collector):
        tracing.set_remote_sampling(False)
        try:
            with tracing.span("root", trace_id="q_off"):
                context = tracing.current_context()
                assert context is not None and not context.sampled
                with tracing.remote_request(context) as capture:
                    assert capture is None
        finally:
            tracing.set_remote_sampling(True)


class TestRemoteRequest:
    def test_captures_spans_without_a_collector(self):
        assert tracing.collector() is None
        context = SpanContext("q_far", 3, True)
        with tracing.remote_request(context) as capture:
            assert capture is not None
            with tracing.span("server.request") as outer:
                assert outer.trace_id == "q_far"
                with tracing.span("executor.scan"):
                    pass
        records = capture.to_wire()
        assert [r["name"] for r in records] == [
            "executor.scan", "server.request",
        ]
        # The captured root parents under the caller's span id.
        by_name = {r["name"]: r for r in records}
        assert by_name["server.request"]["parent_id"] == 3
        assert by_name["executor.scan"]["parent_id"] == (
            by_name["server.request"]["span_id"]
        )

    def test_none_context_is_a_noop(self, collector):
        with tracing.remote_request(None) as capture:
            assert capture is None
            with tracing.span("server.request", trace_id="q_local"):
                pass
        # Without a remote context, spans go to the local collector.
        assert collector.trace("q_local")


def simulate_remote_part(
    context: SpanContext, ledger: CostLedger
) -> list[dict]:
    """One node's request handling, in an isolated contextvars copy."""

    def handle() -> list[dict]:
        with tracing.remote_request(context) as capture:
            with tracing.span(
                "server.request", method="threshold"
            ) as request_span:
                with tracing.span("executor.scan", category="io"):
                    pass
                request_span.attach_ledger(ledger)
        assert capture is not None
        return capture.to_wire()

    return contextvars.copy_context().run(handle)


seconds = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)
ledgers = st.fixed_dictionaries(
    {category: seconds for category in Category}
).map(CostLedger)


class TestStitchingFidelity:
    @settings(max_examples=25, deadline=None)
    @given(parts=st.lists(ledgers, min_size=1, max_size=4))
    def test_category_totals_reconcile_with_merged_ledger(self, parts):
        """A stitched multi-process trace reports exactly the merged
        CostLedger: per-node ledgers compose in parallel onto the root,
        and grafting remote spans never perturbs the totals."""
        collector = tracing.install(TraceCollector())
        try:
            merged = CostLedger.parallel(parts)
            with tracing.span(
                "query.threshold", trace_id=tracing.new_trace_id()
            ) as root:
                for node_id, ledger in enumerate(parts):
                    context = tracing.current_context()
                    assert context is not None
                    records = simulate_remote_part(context, ledger)
                    with tracing.span("net.rpc", node=node_id):
                        tracing.absorb_remote(
                            {"node": node_id, "recv": 1.0, "send": 2.0,
                             "spans": records},
                            client_send=0.5,
                            client_recv=2.5,
                        )
                root.attach_ledger(merged)
            spans = collector.trace(root.trace_id)
            assert tracing.category_totals(spans) == merged.breakdown()
        finally:
            tracing.uninstall()

    @settings(max_examples=25, deadline=None)
    @given(ledger=ledgers, offset=st.floats(
        min_value=-1e3, max_value=1e3, allow_nan=False
    ))
    def test_grafted_ledgers_survive_clock_shifts(self, ledger, offset):
        """Shifting remote timestamps by any skew moves wall clocks but
        never the simulated-time breakdown on the grafted spans."""
        collector = tracing.install(TraceCollector())
        try:
            with tracing.span("root", trace_id="q_skew") as root:
                context = tracing.current_context()
                assert context is not None
                records = simulate_remote_part(context, ledger)
                grafted = tracing.graft_spans(
                    records, parent=root, clock_offset=offset,
                    origin="node0",
                )
            request = next(
                s for s in grafted if s.name == "server.request"
            )
            assert request.breakdown == ledger.breakdown()
            original = next(
                r for r in records if r["name"] == "server.request"
            )
            assert request.start == pytest.approx(
                original["start"] + offset
            )
        finally:
            tracing.uninstall()

    def test_grafted_ids_are_remapped_and_reanchored(self, collector):
        context = SpanContext("q_ids", 9, True)
        records = simulate_remote_part(context, CostLedger())
        with tracing.span("net.rpc", trace_id="q_local") as rpc:
            grafted = tracing.graft_spans(records, parent=rpc)
        local_ids = {span.span_id for span in grafted}
        assert rpc.span_id not in local_ids
        assert len(local_ids) == len(grafted)
        by_name = {span.name: span for span in grafted}
        # The remote root re-anchors under the local rpc span; the
        # child's parent pointer is remapped consistently.
        assert by_name["server.request"].parent_id == rpc.span_id
        assert by_name["executor.scan"].parent_id == (
            by_name["server.request"].span_id
        )
        assert all(span.trace_id == "q_local" for span in grafted)
        stitched = collector.trace("q_local")
        assert len(stitched) == 1 + len(grafted)
        assert "(empty trace)" not in tracing.render_tree(stitched)

    def test_absorb_records_node_attribution(self, collector):
        context_records: list[dict] = []
        with tracing.span("root", trace_id="q_attr") as root:
            context = tracing.current_context()
            assert context is not None
            context_records = simulate_remote_part(context, CostLedger())
            with tracing.span("net.rpc", node=1) as rpc:
                tracing.absorb_remote(
                    {"node": 1, "recv": 10.0, "send": 10.25,
                     "spans": context_records},
                    client_send=0.0,
                    client_recv=0.5,
                )
            assert rpc.attributes["remote_node"] == 1
            assert rpc.attributes["remote_seconds"] == pytest.approx(0.25)
        spans = collector.trace("q_attr")
        origins = {
            s.attributes.get("origin")
            for s in spans
            if s.attributes.get("origin")
        }
        assert origins == {"node1"}
        assert root.trace_id == "q_attr"


class TestClockSkew:
    @settings(max_examples=50, deadline=None)
    @given(
        rtt=st.floats(min_value=1e-4, max_value=10.0, allow_nan=False),
        processing=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        skew=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    def test_midpoint_offset_recovers_symmetric_skew(
        self, rtt, processing, skew
    ):
        """With symmetric network legs the midpoint estimate recovers
        the true clock offset exactly, whatever the skew magnitude."""
        client_send = 100.0
        leg = rtt / 2.0
        server_recv = client_send + leg + skew
        server_send = server_recv + processing
        client_recv = client_send + rtt + processing
        offset = tracing.clock_skew_offset(
            client_send, client_recv, server_recv, server_send
        )
        # Remote stamps shifted by -offset land on the client timeline.
        assert server_recv + offset == pytest.approx(
            client_send + leg, rel=1e-9, abs=1e-6
        )

    def test_zero_skew_zero_offset(self):
        assert tracing.clock_skew_offset(0.0, 1.0, 0.5, 0.5) == 0.0


class TestOrphanedSubtrees:
    def test_failed_rpc_is_marked_orphaned_not_silent(self, collector):
        """A killed node's part yields an explicitly-marked orphan span
        rather than silently missing work."""
        with pytest.raises(RuntimeError):
            with tracing.span("root", trace_id="q_dead"):
                with tracing.span("net.rpc", node=1) as rpc:
                    try:
                        raise RuntimeError("connection lost")
                    except RuntimeError as error:
                        tracing.mark_orphaned(rpc, type(error).__name__)
                        raise
        spans = collector.trace("q_dead")
        orphans = [s for s in spans if s.attributes.get("orphaned")]
        assert len(orphans) == 1
        assert orphans[0].name == "net.rpc"
        assert orphans[0].attributes["orphan_reason"] == "RuntimeError"
        assert all(s.end is not None for s in spans)

    def test_orphan_marking_accepts_the_noop_span(self):
        assert tracing.collector() is None
        with tracing.span("net.rpc") as span:
            tracing.mark_orphaned(span, "NodeUnavailableError")
        # The shared no-op span must swallow the attrs without state.
        assert tracing.current_span() is None

    def test_span_json_round_trip_keeps_orphan_flag(self):
        span = Span(
            trace_id="q1", span_id=1, parent_id=None, name="net.rpc",
            category=None, attributes={},
        )
        tracing.mark_orphaned(span, "DeadlineExceededError")
        span.start = 1.0
        span.end = 2.0
        back = Span.from_json(span.to_json())
        assert back.attributes["orphaned"] is True
        assert back.attributes["orphan_reason"] == "DeadlineExceededError"
