"""Tests for write-ahead logging and crash recovery."""

import pytest

from repro.costmodel import Category, CostLedger
from repro.costmodel.devices import SsdSpec
from repro.storage import (
    Column,
    ColumnType,
    Database,
    ForeignKey,
    StorageDevice,
    TableSchema,
)
from repro.storage.wal import WalKind, WriteAheadLog, checkpoint, recover


def schemas():
    parent = TableSchema(
        "info",
        (
            Column("id", ColumnType.INTEGER),
            Column("label", ColumnType.TEXT, nullable=True),
            Column("value", ColumnType.FLOAT, nullable=True),
        ),
        primary_key=("id",),
    )
    child = TableSchema(
        "data",
        (
            Column("info_id", ColumnType.INTEGER),
            Column("seq", ColumnType.INTEGER),
        ),
        primary_key=("info_id", "seq"),
        indexes={"by_info": ("info_id",)},
        foreign_keys=(ForeignKey(("info_id",), "info", cascade=True),),
    )
    return [(parent, "ssd"), (child, "ssd")]


def make_db(wal=None):
    db = Database("primary", wal=wal)
    db.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))
    for schema, device in schemas():
        db.create_table(schema, device=device)
    return db


def recovered_from(wal):
    return recover(
        wal,
        schemas(),
        [StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP)],
    )


class TestLogging:
    def test_writes_append_records(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "a"})
        kinds = [r.kind for r in wal.records()]
        assert kinds == [WalKind.INSERT, WalKind.COMMIT]

    def test_read_only_txn_logs_nothing(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        with db.transaction() as txn:
            db.table("info").get(txn, (1,))
        assert len(wal) == 0

    def test_abort_logged(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        txn = db.begin()
        db.table("info").insert(txn, {"id": 1, "label": "a"})
        txn.abort()
        assert wal.records()[-1].kind is WalKind.ABORT

    def test_commit_flush_charges_log_device(self):
        device = StorageDevice("log", SsdSpec(), Category.IO)
        ledger = CostLedger()
        device.bind_ledger(ledger)
        wal = WriteAheadLog(device)
        db = make_db(wal)
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "abc"})
        assert ledger[Category.IO] > 0

    def test_truncate(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        for i in range(3):
            with db.transaction() as txn:
                db.table("info").insert(txn, {"id": i})
        high = wal.records()[-1].lsn
        assert wal.truncate_to(high) == 6
        assert len(wal) == 0


class TestRecovery:
    def test_committed_transactions_survive(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "a", "value": 2.0})
            db.table("data").insert(txn, {"info_id": 1, "seq": 0})
        replica = recovered_from(wal)
        with replica.transaction() as txn:
            assert replica.table("info").get(txn, (1,))["label"] == "a"
            assert replica.table("data").count(txn) == 1

    def test_uncommitted_transactions_lost(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1})
        crashed = db.begin()  # never commits: the "crash"
        db.table("info").insert(crashed, {"id": 2})
        replica = recovered_from(wal)
        with replica.transaction() as txn:
            assert replica.table("info").get(txn, (1,)) is not None
            assert replica.table("info").get(txn, (2,)) is None

    def test_aborted_transactions_lost(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        txn = db.begin()
        db.table("info").insert(txn, {"id": 9})
        txn.abort()
        replica = recovered_from(wal)
        with replica.transaction() as reader:
            assert replica.table("info").count(reader) == 0

    def test_updates_and_deletes_replay(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "value": 1.0})
            db.table("info").insert(txn, {"id": 2, "value": 2.0})
        with db.transaction() as txn:
            db.table("info").update(txn, (1,), {"value": 10.0})
            db.table("info").delete(txn, (2,))
        replica = recovered_from(wal)
        with replica.transaction() as txn:
            assert replica.table("info").get(txn, (1,))["value"] == 10.0
            assert replica.table("info").get(txn, (2,)) is None

    def test_cascade_deletes_replay(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1})
            for seq in range(3):
                db.table("data").insert(txn, {"info_id": 1, "seq": seq})
        with db.transaction() as txn:
            db.table("info").delete(txn, (1,))
        replica = recovered_from(wal)
        with replica.transaction() as txn:
            assert replica.table("info").count(txn) == 0
            assert replica.table("data").count(txn) == 0

    def test_commit_order_respected(self):
        """A later commit's update wins, regardless of begin order."""
        wal = WriteAheadLog()
        db = make_db(wal)
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "original"})
        first = db.begin()
        db.table("info").update(first, (1,), {"label": "first"})
        first.commit()
        second = db.begin()
        db.table("info").update(second, (1,), {"label": "second"})
        second.commit()
        replica = recovered_from(wal)
        with replica.transaction() as txn:
            assert replica.table("info").get(txn, (1,))["label"] == "second"

    def test_recover_from_checkpoint_plus_tail(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        with db.transaction() as txn:
            db.table("info").insert(txn, {"id": 1, "label": "pre"})
            db.table("data").insert(txn, {"info_id": 1, "seq": 0})
        snap = checkpoint(db, wal)
        dropped = wal.truncate_to(snap.lsn)
        assert dropped > 0
        with db.transaction() as txn:  # tail activity after the checkpoint
            db.table("info").insert(txn, {"id": 2, "label": "post"})
            db.table("info").update(txn, (1,), {"label": "updated"})
        replica = recover(
            wal,
            schemas(),
            [StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP)],
            from_checkpoint=snap,
        )
        with replica.transaction() as txn:
            assert replica.table("info").get(txn, (1,))["label"] == "updated"
            assert replica.table("info").get(txn, (2,))["label"] == "post"
            assert replica.table("data").count(txn) == 1

    def test_checkpoint_skips_unlogged_tables(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        from repro.storage import TableSchema as TS, Column as C, ColumnType as CT

        db.create_table(
            TS("bulk", (C("k", CT.INTEGER),), ("k",), logged=False),
            device="ssd",
        )
        with db.transaction() as txn:
            db.table("bulk").insert(txn, {"k": 1})
        snap = checkpoint(db, wal)
        assert "bulk" not in snap.rows

    def test_replica_matches_primary_state(self):
        wal = WriteAheadLog()
        db = make_db(wal)
        import random

        rng = random.Random(5)
        live = set()
        for _ in range(60):
            op = rng.random()
            with db.transaction() as txn:
                if op < 0.6 or not live:
                    key = rng.randrange(100)
                    if key not in live:
                        db.table("info").insert(
                            txn, {"id": key, "value": float(key)}
                        )
                        live.add(key)
                elif op < 0.8:
                    key = rng.choice(sorted(live))
                    db.table("info").update(txn, (key,), {"value": -1.0})
                else:
                    key = rng.choice(sorted(live))
                    db.table("info").delete(txn, (key,))
                    live.discard(key)
        replica = recovered_from(wal)
        with db.transaction() as a, replica.transaction() as b:
            primary_rows = list(db.table("info").scan(a))
            replica_rows = list(replica.table("info").scan(b))
        assert primary_rows == replica_rows
