"""Tests for repro.obs tracing: spans, context propagation, exports."""

import numpy as np
import pytest

from repro.core import ThresholdQuery
from repro.obs import tracing
from repro.obs.tracing import Span, TraceCollector, Tracer

from tests.test_core_threshold import ground_truth_norm


@pytest.fixture()
def collector():
    """Install a fresh collector on the global tracer for one test."""
    installed = tracing.install(TraceCollector())
    yield installed
    tracing.uninstall()


def run_threshold(mhd_cluster, small_mhd, quantile=0.999):
    norm = ground_truth_norm(small_mhd, "vorticity", 0)
    query = ThresholdQuery(
        dataset="mhd",
        field="vorticity",
        timestep=0,
        threshold=float(np.quantile(norm, quantile)),
    )
    return mhd_cluster.threshold(query)


class TestNoopPath:
    def test_disabled_tracer_hands_out_shared_noop_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner is outer  # one shared no-op object
        outer.set("key", "value")  # all no-ops, must not raise

    def test_query_ids_issued_even_while_disabled(self, mhd_cluster, small_mhd):
        assert tracing.collector() is None
        result = run_threshold(mhd_cluster, small_mhd)
        assert result.query_id is not None
        second = run_threshold(mhd_cluster, small_mhd)
        assert second.query_id != result.query_id


class TestSpanNesting:
    def test_parenting_within_one_context(self, collector):
        with tracing.span("root", trace_id="t1") as root:
            assert tracing.current_span() is root
            with tracing.span("child") as child:
                assert child.parent_id == root.span_id
                assert child.trace_id == "t1"
        assert tracing.current_span() is None
        spans = collector.trace("t1")
        assert [s.name for s in spans] == ["root", "child"]
        assert all(s.end is not None for s in spans)

    def test_span_closes_on_exceptions(self, collector):
        with pytest.raises(RuntimeError):
            with tracing.span("boom", trace_id="t2"):
                raise RuntimeError("kaboom")
        assert tracing.current_span() is None
        (span,) = collector.trace("t2")
        assert span.end is not None


class TestTracedQuery:
    def test_scatter_parts_nest_under_root_across_threads(
        self, collector, mhd_cluster, small_mhd
    ):
        result = run_threshold(mhd_cluster, small_mhd)
        spans = collector.trace(result.query_id)
        root = spans[0]
        assert root.name == "query.threshold"
        assert root.parent_id is None
        parts = [s for s in spans if s.name == "node.part"]
        assert len(parts) == len(mhd_cluster.nodes)
        assert all(p.parent_id == root.span_id for p in parts)
        # The scatter pool really ran parts on worker threads, and the
        # contextvars copy carried the root span across to them.
        assert len({s.thread for s in spans}) > 1

    def test_trace_totals_equal_the_query_ledger(
        self, collector, mhd_cluster, small_mhd
    ):
        # Acceptance criterion: per-category simulated seconds summed
        # from the span tree exactly equal the returned CostLedger.
        result = run_threshold(mhd_cluster, small_mhd)
        spans = collector.trace(result.query_id)
        assert tracing.category_totals(spans) == result.ledger.breakdown()

    def test_phase_spans_cover_every_tier(
        self, collector, mhd_cluster, small_mhd
    ):
        result = run_threshold(mhd_cluster, small_mhd)
        names = {s.name for s in collector.trace(result.query_id)}
        assert {"query.threshold", "node.part", "cache.lookup",
                "node.io", "node.kernel"} <= names


class TestExports:
    def test_jsonl_round_trip(self, collector, mhd_cluster, small_mhd):
        result = run_threshold(mhd_cluster, small_mhd)
        text = collector.to_jsonl(result.query_id)
        restored = TraceCollector.from_jsonl(text)
        original = collector.trace(result.query_id)
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a.to_json() == b.to_json()

    def test_render_tree_shows_both_clocks(
        self, collector, mhd_cluster, small_mhd
    ):
        result = run_threshold(mhd_cluster, small_mhd)
        tree = tracing.render_tree(collector.trace(result.query_id))
        assert "query.threshold" in tree
        assert "wall=" in tree
        assert "sim=" in tree
        assert "└─" in tree

    def test_render_tree_empty(self):
        assert tracing.render_tree([]) == "(empty trace)"


class TestTraceCollector:
    def _span(self, trace_id, span_id):
        span = Span(trace_id, span_id, None, "s", None, {})
        span.end = span.start
        return span

    def test_ring_evicts_oldest_trace(self):
        ring = TraceCollector(max_traces=2)
        for i in range(3):
            ring.record(self._span(f"t{i}", i))
        assert ring.trace_ids() == ["t1", "t2"]
        assert ring.trace("t0") == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceCollector(max_traces=0)
