"""Transport-tier tests: TCP parity with in-process, pooling, faults.

The cluster here runs entirely in-thread (NodeServer instances on
loopback), so these tests exercise the full wire path — framing, codec,
pooling, retries, deadlines — without subprocess start-up cost.  The
subprocess path is covered by ``test_net_cluster_multiprocess.py``.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.cluster.mediator import Mediator, build_cluster
from repro.cluster.partition import MortonPartitioner
from repro.cluster.webservice import WebService
from repro.core import PdfQuery, ThresholdQuery, TopKQuery
from repro.fields.expressions import ExpressionError
from repro.net import codec
from repro.net.client import RetryPolicy
from repro.net.errors import (
    DeadlineExceededError,
    NodeUnavailableError,
    PartialFailureError,
    UnsupportedRemoteOperationError,
)
from repro.net.frame import (
    Deadline,
    FrameType,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)
from repro.net.pool import ConnectionPool
from repro.net.server import ClusterConfig, NodeServer
from repro.net.transport import TcpTransport, parse_address
from repro.simulation.datasets import mhd_dataset

SIDE = 16
TIMESTEPS = 2
NODES = 2
CONFIG = ClusterConfig(
    dataset="mhd", side=SIDE, timesteps=TIMESTEPS, seed=11, nodes=NODES
)

FAST_RETRY = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.05)


def start_tcp_cluster(config=CONFIG):
    """Spin up in-thread node servers, wired to each other, data loaded."""
    servers = [NodeServer(i, config) for i in range(config.nodes)]
    addresses = [f"127.0.0.1:{s.port}" for s in servers]
    for server in servers:
        server.connect_peers(addresses)
        server.load()
        server.start()
    return servers, addresses


@pytest.fixture(scope="module")
def tcp_cluster():
    servers, addresses = start_tcp_cluster()
    transport = TcpTransport(addresses, timeout=30.0, retry=FAST_RETRY)
    mediator = Mediator(
        nodes=[],
        partitioner=MortonPartitioner(SIDE, NODES),
        transport=transport,
        scatter_timeout=60.0,
    )
    yield mediator
    mediator.close()
    for server in servers:
        server.shutdown()


@pytest.fixture(scope="module")
def reference():
    mediator = build_cluster(
        mhd_dataset(side=SIDE, timesteps=TIMESTEPS, seed=11), nodes=NODES
    )
    yield mediator
    mediator.close()


# -- parity with the in-process cluster ------------------------------------------


def test_threshold_matches_in_process_point_for_point(tcp_cluster, reference):
    query = ThresholdQuery(
        dataset="mhd", field="vorticity", timestep=0, threshold=1.0
    )
    over_tcp = tcp_cluster.threshold(query)
    in_process = reference.threshold(query)
    assert len(over_tcp) == len(in_process) > 0
    assert np.array_equal(
        np.sort(over_tcp.zindexes), np.sort(in_process.zindexes)
    )
    order_tcp = np.argsort(over_tcp.zindexes)
    order_ref = np.argsort(in_process.zindexes)
    assert np.array_equal(
        over_tcp.values[order_tcp], in_process.values[order_ref]
    )


def test_pdf_matches_in_process(tcp_cluster, reference):
    query = PdfQuery(
        dataset="mhd",
        field="pressure",
        timestep=1,
        bin_edges=tuple(float(x) for x in np.linspace(-3, 3, 17)),
    )
    assert list(tcp_cluster.pdf(query).counts) == list(
        reference.pdf(query).counts
    )


def test_topk_matches_in_process(tcp_cluster, reference):
    query = TopKQuery(dataset="mhd", field="velocity", timestep=0, k=25)
    over_tcp = tcp_cluster.topk(query)
    in_process = reference.topk(query)
    assert np.array_equal(over_tcp.values, in_process.values)
    assert np.array_equal(over_tcp.zindexes, in_process.zindexes)


def test_batch_threshold_matches_in_process(tcp_cluster, reference):
    queries = [
        ThresholdQuery(
            dataset="mhd", field="vorticity", timestep=0, threshold=t
        )
        for t in (0.8, 1.2, 2.0)
    ]
    batch_tcp = tcp_cluster.batch_threshold(queries)
    batch_ref = reference.batch_threshold(queries)
    for over_tcp, in_process in zip(batch_tcp.results, batch_ref.results):
        assert np.array_equal(
            np.sort(over_tcp.zindexes), np.sort(in_process.zindexes)
        )


def test_catalogue_over_tcp(tcp_cluster):
    assert tcp_cluster.dataset_names() == ["mhd"]
    assert tcp_cluster.transport.dataset_side("mhd") == SIDE
    with pytest.raises(KeyError):
        tcp_cluster.transport.dataset_side("nope")


# -- observability ---------------------------------------------------------------


def test_rpc_metrics_and_wire_reconciliation(tcp_cluster):
    query = ThresholdQuery(
        dataset="mhd", field="pressure", timestep=0, threshold=0.5
    )
    result = tcp_cluster.threshold(query)
    # Real wire bytes land in the result ledger, next to the modeled
    # MEDIATOR_DB transfer, so the cost model can be reconciled.
    assert result.ledger.meters().get("wire_bytes", 0) > 0
    snapshot = tcp_cluster.metrics.to_dict()
    requests = snapshot["rpc_requests_total"]["samples"]
    assert any(
        sample["labels"].get("method") == "threshold"
        and sample["labels"].get("status") == "ok"
        for sample in requests
    )
    assert snapshot["rpc_bytes_sent_total"]["samples"][0]["value"] > 0
    assert snapshot["rpc_bytes_received_total"]["samples"][0]["value"] > 0


def test_remote_queries_fail_typed_on_unknown_field(tcp_cluster):
    from repro.fields.derived import UnknownFieldError

    query = ThresholdQuery(
        dataset="mhd", field="no_such_field", timestep=0, threshold=1.0
    )
    with pytest.raises((UnknownFieldError, PartialFailureError)):
        tcp_cluster.threshold(query)


def test_register_expression_broadcasts_and_stays_typed(tcp_cluster):
    description = tcp_cluster.register_expression(
        "transport_test_field", "pressure * 2"
    )
    assert description["name"] == "transport_test_field"
    with pytest.raises(ValueError):
        tcp_cluster.register_expression(
            "transport_test_field", "pressure * 2"
        )
    with pytest.raises(ExpressionError):
        tcp_cluster.register_expression("another_field", "import os")


def test_local_only_operations_are_refused(tcp_cluster):
    with pytest.raises(UnsupportedRemoteOperationError):
        tcp_cluster.load_dataset(
            mhd_dataset(side=SIDE, timesteps=1, seed=11)
        )
    from repro.grid import Box

    with pytest.raises(UnsupportedRemoteOperationError):
        tcp_cluster.get_field(
            "mhd", "pressure", 0, Box((0, 0, 0), (7, 7, 7))
        )


def test_webservice_over_tcp_transport(tcp_cluster):
    service = WebService(tcp_cluster)
    response = service.handle(
        {
            "method": "GetThreshold",
            "dataset": "mhd",
            "field": "vorticity",
            "timestep": 0,
            "threshold": 2.0,
        }
    )
    assert response["status"] == "ok"
    assert response["count"] == len(response["points"])
    listing = service.handle({"method": "ListDatasets"})
    assert listing == {"status": "ok", "datasets": ["mhd"]}


# -- pooling and retries ---------------------------------------------------------


def test_pool_reuses_connections(tcp_cluster):
    pools = tcp_cluster.transport.pools
    before = [pool.connections_created for pool in pools]
    query = ThresholdQuery(
        dataset="mhd", field="pressure", timestep=0, threshold=0.1
    )
    for _ in range(3):
        tcp_cluster.threshold(query, use_cache=False)
    after = [pool.connections_created for pool in pools]
    # Repeat queries ride the warm connections, never one-per-call.
    assert all(b - a <= 1 for a, b in zip(before, after))


def test_ping_round_trip(tcp_cluster):
    for node_id in range(NODES):
        assert tcp_cluster.transport.ping(node_id) >= 0.0


def test_dead_port_exhausts_retries_quickly():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()

    retried = []
    pool = ConnectionPool(
        "127.0.0.1",
        dead_port,
        retry=RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.02),
        on_retry=lambda: retried.append(1),
    )
    start = time.monotonic()
    with pytest.raises(NodeUnavailableError) as info:
        pool.call("describe", {}, (), timeout=10.0, idempotent=True)
    assert info.value.attempts == 3
    assert len(retried) == 2
    assert time.monotonic() - start < 5.0
    pool.close()


def test_non_idempotent_calls_are_never_retried():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()

    pool = ConnectionPool(
        "127.0.0.1", dead_port, retry=RetryPolicy(attempts=5, base_delay=0.01)
    )
    with pytest.raises(NodeUnavailableError) as info:
        pool.call(
            "register_field",
            {"name": "x", "text": "pressure"},
            (),
            timeout=5.0,
            idempotent=False,
        )
    assert info.value.attempts == 1
    assert pool.retries == 0
    pool.close()


# -- fault injection -------------------------------------------------------------


class _SlowServer:
    """Handshakes correctly, then sits on every request forever."""

    def __init__(self):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._running = True
        self._conns = []
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self._conns.append(conn)
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn):
        try:
            frame = recv_frame(conn, Deadline.after(30), eof_ok=True)
            if frame is None:
                return
            send_frame(
                conn,
                FrameType.HELLO_ACK,
                frame.request_id,
                codec.encode_message(
                    {
                        "protocol": PROTOCOL_VERSION,
                        "node_id": 0,
                        "codecs": [],
                        "codec": "none",
                    }
                ),
                Deadline.after(30),
            )
            while self._running:  # swallow requests, answer nothing
                if recv_frame(conn, Deadline.after(30), eof_ok=True) is None:
                    return
        except Exception:
            pass

    def close(self):
        self._running = False
        self._listener.close()
        for conn in self._conns:
            conn.close()
        self._thread.join(timeout=5)


def test_slow_node_hits_the_deadline_as_a_typed_error():
    slow = _SlowServer()
    try:
        transport = TcpTransport(
            [f"127.0.0.1:{slow.port}"], timeout=0.5, retry=FAST_RETRY
        )
        mediator = Mediator(
            nodes=[],
            partitioner=MortonPartitioner(8, 1),
            transport=transport,
            scatter_timeout=30.0,
        )
        query = ThresholdQuery(
            dataset="mhd", field="pressure", timestep=0, threshold=1.0
        )
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            mediator.threshold(query)
        assert time.monotonic() - start < 10.0
        mediator.close()
    finally:
        slow.close()


def test_killed_node_becomes_a_typed_partial_failure():
    servers, addresses = start_tcp_cluster()
    transport = TcpTransport(addresses, timeout=5.0, retry=FAST_RETRY)
    mediator = Mediator(
        nodes=[],
        partitioner=MortonPartitioner(SIDE, NODES),
        transport=transport,
        scatter_timeout=30.0,
    )
    try:
        query = ThresholdQuery(
            dataset="mhd", field="pressure", timestep=0, threshold=0.5
        )
        assert len(mediator.threshold(query)) > 0  # cluster healthy

        servers[1].shutdown()  # kill one node out from under the mediator
        start = time.monotonic()
        with pytest.raises(PartialFailureError) as info:
            mediator.threshold(query, use_cache=False)
        assert info.value.node_id == 1
        assert time.monotonic() - start < 20.0

        # The web service maps the same failure to a wire error code.
        response = WebService(mediator).handle(
            {
                "method": "GetThreshold",
                "dataset": "mhd",
                "field": "pressure",
                "timestep": 0,
                "threshold": 0.5,
            }
        )
        assert response["status"] == "error"
        assert response["code"] == "node_unavailable"
    finally:
        mediator.close()
        for server in servers:
            server.shutdown()


def test_parse_address():
    assert parse_address("host:99") == ("host", 99)
    assert parse_address(("h", 7)) == ("h", 7)
    with pytest.raises(ValueError):
        parse_address("no-port")
