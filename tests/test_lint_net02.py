"""NET02 (zero-copy wire discipline) checker tests."""

import subprocess
import sys
from pathlib import Path

from repro.lint.checkers.net02 import NetZeroCopy

from tests.lint_helpers import load, run_checker

REPO_ROOT = Path(__file__).parent.parent


def test_clean_fixture_passes():
    source = load("net02_good.py", "repro.net.fixture_good")
    assert run_checker(NetZeroCopy(), source) == []


def test_bad_fixture_reports_each_violation():
    source = load("net02_bad.py", "repro.net.fixture_bad")
    diags = run_checker(NetZeroCopy(), source)
    assert len(diags) == 5
    messages = "\n".join(d.message for d in diags)
    assert "bytes .join()" in messages
    assert "concatenating payload with +" in messages
    assert "payload +=" in messages
    assert "materialising payload" in messages
    assert "materialising blob" in messages
    assert all(d.code == "NET02" for d in diags)


def test_scope_excludes_the_http_sidecar():
    checker = NetZeroCopy()
    assert checker.applies("repro.net.frame")
    assert checker.applies("repro.net.codec")
    assert checker.applies("repro.net.server")
    assert not checker.applies("repro.net.http")
    assert not checker.applies("repro.cluster.mediator")
    assert not checker.applies("repro.core.pointset")


def test_arithmetic_on_lengths_is_legal():
    """Summing sizes is not payload concatenation."""
    source = load("net02_good.py", "repro.net.fixture_good")
    diags = run_checker(NetZeroCopy(), source)
    assert diags == []


def test_own_net_package_is_clean():
    """The shipped data plane must satisfy its own lint rule."""
    from repro.lint import SourceFile

    net_dir = REPO_ROOT / "src" / "repro" / "net"
    checker = NetZeroCopy()
    for path in sorted(net_dir.glob("*.py")):
        module = f"repro.net.{path.stem}"
        if not checker.applies(module):
            continue
        source = SourceFile(path, module)
        diags = [
            d
            for d in checker.check(source)
            if not source.suppressed(d.code, d.line)
        ]
        assert diags == [], f"{path.name}: {[d.message for d in diags]}"


def test_cli_selects_net02(tmp_path):
    """``python -m repro.lint --select NET02`` flags a dirty net module."""
    target = tmp_path / "src" / "repro" / "net"
    target.mkdir(parents=True)
    bad = target / "fixture.py"
    bad.write_text(
        (REPO_ROOT / "tests" / "fixtures" / "lint" / "net02_bad.py")
        .read_text()
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--select", "NET02", str(bad)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode != 0
    assert "NET02" in result.stdout
    assert "5 issue(s) found" in result.stdout
