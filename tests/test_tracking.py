"""Tests for intense-event tracking."""

import numpy as np
import pytest

from repro.analysis.tracking import (
    EventTrack,
    _periodic_centroid,
    track_events,
)


def synthetic_track(positions, peaks):
    """Points for one blob of 3 cells drifting through timesteps."""
    timesteps, coords, values = [], [], []
    for t, ((x, y, z), peak) in enumerate(zip(positions, peaks)):
        for dz, value in ((0, peak), (1, peak * 0.8), (2, peak * 0.6)):
            timesteps.append(t)
            coords.append((x, y, z + dz))
            values.append(value)
    return np.array(timesteps), np.array(coords), np.array(values)


class TestPeriodicCentroid:
    def test_simple_mean(self):
        coords = np.array([[1, 1, 1], [3, 3, 3]])
        assert _periodic_centroid(coords, 32) == (2.0, 2.0, 2.0)

    def test_wraps_across_boundary(self):
        coords = np.array([[31, 0, 0], [1, 0, 0]])
        cx, _, _ = _periodic_centroid(coords, 32)
        assert cx in (0.0, 32.0) or abs(cx - 0.0) < 1e-9


class TestTrackEvents:
    def test_single_drifting_event(self):
        timesteps, coords, values = synthetic_track(
            positions=[(5, 5, 5), (7, 5, 5), (9, 5, 5)],
            peaks=[10.0, 14.0, 11.0],
        )
        tracks = track_events(timesteps, coords, values, side=32)
        assert len(tracks) == 1
        track = tracks[0]
        assert track.lifetime == 3
        assert track.birth == 0 and track.death == 2
        assert track.peak_value == 14.0
        assert track.peak_timestep == 1
        assert track.total_points == 9
        assert track.drift(32) == pytest.approx(2.0, abs=0.2)

    def test_snapshot_details(self):
        timesteps, coords, values = synthetic_track(
            positions=[(5, 5, 5)], peaks=[9.0]
        )
        track = track_events(timesteps, coords, values, side=32, min_size=1)[0]
        snap = track.snapshots[0]
        assert snap.size == 3
        assert snap.peak_location == (5, 5, 5)
        assert snap.peak_value == 9.0
        assert track.drift(32) == 0.0

    def test_two_separate_events_two_tracks(self):
        t1, c1, v1 = synthetic_track([(2, 2, 2), (2, 2, 2)], [5.0, 5.0])
        t2, c2, v2 = synthetic_track([(20, 20, 20)], [8.0])
        tracks = track_events(
            np.concatenate([t1, t2]),
            np.concatenate([c1, c2]),
            np.concatenate([v1, v2]),
            side=32,
        )
        assert len(tracks) == 2
        assert tracks[0].peak_value == 8.0  # sorted by peak

    def test_fast_mover_splits_into_tracks(self):
        """Jumping farther than the linking length breaks the track."""
        timesteps, coords, values = synthetic_track(
            positions=[(5, 5, 5), (15, 5, 5)], peaks=[5.0, 5.0]
        )
        tracks = track_events(
            timesteps, coords, values, side=32, linking_length=2
        )
        assert len(tracks) == 2

    def test_periodic_drift(self):
        """A blob crossing the domain boundary keeps one coherent track."""
        timesteps, coords, values = synthetic_track(
            positions=[(30, 5, 5), (0, 5, 5), (2, 5, 5)],
            peaks=[5.0, 5.0, 5.0],
        )
        tracks = track_events(timesteps, coords, values, side=32)
        assert len(tracks) == 1
        assert tracks[0].drift(32) == pytest.approx(2.0, abs=0.2)

    def test_from_real_cluster_results(self, small_mhd, mhd_cluster):
        from repro.core import ThresholdQuery
        from tests.test_core_threshold import ground_truth_norm

        all_t, all_c, all_v = [], [], []
        for timestep in range(2):
            norm = ground_truth_norm(small_mhd, "vorticity", timestep)
            result = mhd_cluster.threshold(
                ThresholdQuery(
                    "mhd", "vorticity", timestep,
                    float(np.quantile(norm, 0.999)),
                ),
                use_cache=False,
            )
            all_t.append(np.full(len(result), timestep))
            all_c.append(result.coordinates())
            all_v.append(result.values)
        tracks = track_events(
            np.concatenate(all_t),
            np.concatenate(all_c),
            np.concatenate(all_v),
            side=32,
        )
        assert tracks
        for track in tracks:
            assert track.birth <= track.peak_timestep <= track.death