"""Tests for the PDF-result cache extension."""

import numpy as np
import pytest

from repro.core import PdfQuery
from repro.core.pdfcache import PdfCache
from repro.costmodel import Category
from repro.costmodel.devices import SsdSpec
from repro.storage import Database, StorageDevice


def make_host():
    db = Database()
    db.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))
    return db


class TestPdfCacheUnit:
    def test_miss_on_empty(self):
        db = make_host()
        cache = PdfCache(db)
        with db.transaction() as txn:
            assert cache.lookup(txn, "mhd", "vorticity", 0, 4, (0.0, 1.0)) is None

    def test_store_and_hit(self):
        db = make_host()
        cache = PdfCache(db)
        counts = np.array([10, 20, 5], dtype=np.int64)
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 0, 4, (0.0, 1.0, 2.0), counts)
        with db.transaction() as txn:
            got = cache.lookup(txn, "mhd", "vorticity", 0, 4, (0.0, 1.0, 2.0))
        assert np.array_equal(got, counts)

    def test_edges_must_match_exactly(self):
        db = make_host()
        cache = PdfCache(db)
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 0, 4, (0.0, 1.0),
                        np.array([1], np.int64))
        with db.transaction() as txn:
            assert cache.lookup(txn, "mhd", "vorticity", 0, 4, (0.0, 2.0)) is None

    def test_fd_order_part_of_key(self):
        db = make_host()
        cache = PdfCache(db)
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 0, 4, (0.0, 1.0),
                        np.array([1], np.int64))
        with db.transaction() as txn:
            assert cache.lookup(txn, "mhd", "vorticity", 0, 8, (0.0, 1.0)) is None

    def test_lru_eviction_at_capacity(self):
        db = make_host()
        cache = PdfCache(db, max_entries=2)
        with db.transaction() as txn:
            for t in range(3):
                cache.store(txn, "mhd", "vorticity", t, 4, (0.0, 1.0),
                            np.array([t], np.int64))
        with db.transaction() as txn:
            assert cache.entry_count(txn) == 2
            assert cache.lookup(txn, "mhd", "vorticity", 0, 4, (0.0, 1.0)) is None
            assert cache.lookup(txn, "mhd", "vorticity", 2, 4, (0.0, 1.0)) is not None

    def test_clear(self):
        db = make_host()
        cache = PdfCache(db)
        with db.transaction() as txn:
            cache.store(txn, "m", "f", 0, 4, (0.0, 1.0), np.array([1], np.int64))
        assert cache.clear() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PdfCache(make_host(), max_entries=0)


class TestPdfCacheIntegration:
    def test_second_pdf_query_hits(self, mhd_cluster):
        query = PdfQuery("mhd", "vorticity", 0, (0.0, 2.0, 4.0, 8.0))
        mhd_cluster.drop_page_caches()
        cold = mhd_cluster.pdf(query)
        mhd_cluster.drop_page_caches()
        warm = mhd_cluster.pdf(query)
        assert np.array_equal(cold.counts, warm.counts)
        assert warm.ledger[Category.IO] == 0.0
        assert warm.ledger[Category.COMPUTE] == 0.0
        assert warm.ledger.total < cold.ledger.total

    def test_different_edges_miss(self, mhd_cluster):
        mhd_cluster.pdf(PdfQuery("mhd", "vorticity", 1, (0.0, 2.0)))
        mhd_cluster.drop_page_caches()
        other = mhd_cluster.pdf(PdfQuery("mhd", "vorticity", 1, (0.0, 3.0)))
        assert other.ledger[Category.IO] > 0

    def test_use_cache_false_bypasses(self, mhd_cluster):
        query = PdfQuery("mhd", "magnetic", 0, (0.0, 1.0))
        mhd_cluster.pdf(query)
        mhd_cluster.drop_page_caches()
        result = mhd_cluster.pdf(query, use_cache=False)
        assert result.ledger[Category.IO] > 0

    def test_cacheless_cluster_has_no_pdf_cache(self, small_mhd):
        from repro.cluster import build_cluster

        mediator = build_cluster(small_mhd, nodes=2, cache_capacity_bytes=None)
        assert all(c is None for c in mediator.pdf_caches)
        result = mediator.pdf(PdfQuery("mhd", "vorticity", 0, (0.0, 1.0)))
        assert result.total_points == 32**3
