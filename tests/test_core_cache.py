"""Tests for the semantic cache's containment, dominance, LRU and FKs."""

import numpy as np
import pytest

from repro.core.cache import CacheLookup, SemanticCache
from repro.costmodel import Category, paper_cluster
from repro.costmodel.devices import HddArraySpec, SsdSpec
from repro.grid import Box
from repro.morton import encode_array
from repro.storage import Database, StorageDevice


def make_cache(capacity_bytes=1 << 20, point_record_bytes=20):
    db = Database("cachehost")
    db.add_device(StorageDevice("hdd", HddArraySpec(), Category.IO))
    db.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))
    return db, SemanticCache(db, capacity_bytes, point_record_bytes)


def points_in_box(box, count, value=10.0, seed=0):
    rng = np.random.default_rng(seed)
    xs = rng.integers(box.lo[0], box.hi[0], count)
    ys = rng.integers(box.lo[1], box.hi[1], count)
    zs = rng.integers(box.lo[2], box.hi[2], count)
    zindexes = np.unique(encode_array(xs, ys, zs))
    values = np.linspace(value, value * 2, len(zindexes))
    return zindexes, values


BOX = Box((0, 0, 0), (16, 16, 16))


class TestLookupSemantics:
    def test_empty_cache_misses(self):
        db, cache = make_cache()
        with db.transaction() as txn:
            lookup = cache.lookup(txn, "mhd", "vorticity", 0, BOX, 5.0)
        assert not lookup.hit and lookup.stale_ordinal is None

    def test_exact_hit(self):
        db, cache = make_cache()
        zindexes, values = points_in_box(BOX, 50)
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 0, BOX, 5.0, zindexes, values)
        with db.transaction() as txn:
            lookup = cache.lookup(txn, "mhd", "vorticity", 0, BOX, 5.0)
        assert lookup.hit
        assert np.array_equal(np.sort(lookup.zindexes), np.sort(zindexes))

    def test_higher_threshold_hits_and_filters(self):
        db, cache = make_cache()
        zindexes, values = points_in_box(BOX, 60)
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 0, BOX, 5.0, zindexes, values)
        cut = float(np.median(values))
        with db.transaction() as txn:
            lookup = cache.lookup(txn, "mhd", "vorticity", 0, BOX, cut)
        assert lookup.hit
        assert (lookup.values >= cut).all()
        assert len(lookup.values) == int((values >= cut).sum())

    def test_lower_threshold_is_stale_miss(self):
        db, cache = make_cache()
        zindexes, values = points_in_box(BOX, 10)
        with db.transaction() as txn:
            ordinal = cache.store(
                txn, "mhd", "vorticity", 0, BOX, 5.0, zindexes, values
            )
        with db.transaction() as txn:
            lookup = cache.lookup(txn, "mhd", "vorticity", 0, BOX, 2.0)
        assert not lookup.hit
        assert lookup.stale_ordinal == ordinal

    def test_contained_region_hits_and_clips(self):
        db, cache = make_cache()
        zindexes, values = points_in_box(BOX, 200, seed=3)
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 0, BOX, 5.0, zindexes, values)
        sub = Box((4, 4, 4), (12, 12, 12))
        with db.transaction() as txn:
            lookup = cache.lookup(txn, "mhd", "vorticity", 0, sub, 5.0)
        assert lookup.hit
        from repro.morton import decode_array

        x, y, z = decode_array(lookup.zindexes)
        assert (x >= 4).all() and (x < 12).all()
        assert (y >= 4).all() and (z < 12).all()

    def test_disjoint_region_misses(self):
        db, cache = make_cache()
        zindexes, values = points_in_box(BOX, 10)
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 0, BOX, 5.0, zindexes, values)
        other = Box((16, 16, 16), (32, 32, 32))
        with db.transaction() as txn:
            assert not cache.lookup(txn, "mhd", "vorticity", 0, other, 5.0).hit

    def test_different_key_dimensions_miss(self):
        db, cache = make_cache()
        zindexes, values = points_in_box(BOX, 10)
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 0, BOX, 5.0, zindexes, values)
        with db.transaction() as txn:
            assert not cache.lookup(txn, "mhd", "vorticity", 1, BOX, 5.0).hit
            assert not cache.lookup(txn, "mhd", "q_criterion", 0, BOX, 5.0).hit
            assert not cache.lookup(txn, "iso", "vorticity", 0, BOX, 5.0).hit

    def test_hit_results_sorted_by_zindex(self):
        db, cache = make_cache()
        zindexes, values = points_in_box(BOX, 100, seed=9)
        shuffled = np.random.default_rng(1).permutation(len(zindexes))
        with db.transaction() as txn:
            cache.store(
                txn, "mhd", "vorticity", 0, BOX, 5.0,
                zindexes[shuffled], values[shuffled],
            )
        with db.transaction() as txn:
            lookup = cache.lookup(txn, "mhd", "vorticity", 0, BOX, 5.0)
        assert (np.diff(lookup.zindexes.astype(np.int64)) > 0).all()


class TestStoreAndReplace:
    def test_store_replaces_stale_entry(self):
        db, cache = make_cache()
        z1, v1 = points_in_box(BOX, 10)
        with db.transaction() as txn:
            stale = cache.store(txn, "mhd", "vorticity", 0, BOX, 5.0, z1, v1)
        z2, v2 = points_in_box(BOX, 30, seed=5)
        with db.transaction() as txn:
            cache.store(
                txn, "mhd", "vorticity", 0, BOX, 2.0, z2, v2,
                replace_ordinal=stale,
            )
            assert cache.entry_count(txn) == 1
        with db.transaction() as txn:
            lookup = cache.lookup(txn, "mhd", "vorticity", 0, BOX, 2.0)
        assert lookup.hit and len(lookup.zindexes) == len(z2)

    def test_store_mismatched_arrays_rejected(self):
        db, cache = make_cache()
        with db.transaction() as txn:
            with pytest.raises(ValueError):
                cache.store(
                    txn, "mhd", "vorticity", 0, BOX, 5.0,
                    np.array([1], np.uint64), np.array([], np.float64),
                )
            txn.abort()

    def test_oversized_result_rejected(self):
        db, cache = make_cache(capacity_bytes=100)
        zindexes, values = points_in_box(BOX, 50)
        with db.transaction() as txn:
            with pytest.raises(ValueError):
                cache.store(txn, "mhd", "vorticity", 0, BOX, 5.0, zindexes, values)
            txn.abort()

    def test_used_bytes_accounting(self):
        db, cache = make_cache(point_record_bytes=20)
        zindexes, values = points_in_box(BOX, 40)
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 0, BOX, 5.0, zindexes, values)
            assert cache.used_bytes(txn) == len(zindexes) * 20


class TestLruEviction:
    def test_least_recently_used_evicted_first(self):
        db, cache = make_cache(capacity_bytes=3000, point_record_bytes=20)
        boxes = [Box((i * 4, 0, 0), ((i + 1) * 4, 4, 4)) for i in range(4)]
        # Three entries of ~50 points x 20 B = ~1000 B each fill the cache.
        for t, box in enumerate(boxes[:3]):
            z, v = points_in_box(box, 100, seed=t)
            z, v = z[:50], v[:50]
            with db.transaction() as txn:
                cache.store(txn, "mhd", "vorticity", t, box, 5.0, z, v)
        # Touch entry 0 so entry for t=1 becomes LRU.
        with db.transaction() as txn:
            assert cache.lookup(txn, "mhd", "vorticity", 0, boxes[0], 5.0).hit
        z, v = points_in_box(boxes[3], 100, seed=9)
        z, v = z[:50], v[:50]
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 3, boxes[3], 5.0, z, v)
        with db.transaction() as txn:
            assert cache.lookup(txn, "mhd", "vorticity", 0, boxes[0], 5.0).hit
            assert not cache.lookup(txn, "mhd", "vorticity", 1, boxes[1], 5.0).hit
            assert cache.lookup(txn, "mhd", "vorticity", 3, boxes[3], 5.0).hit

    def test_eviction_cascades_to_cache_data(self):
        db, cache = make_cache(capacity_bytes=1200, point_record_bytes=20)
        z1, v1 = points_in_box(BOX, 100, seed=1)
        z1, v1 = z1[:50], v1[:50]
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 0, BOX, 5.0, z1, v1)
        z2, v2 = points_in_box(BOX, 100, seed=2)
        z2, v2 = z2[:50], v2[:50]
        with db.transaction() as txn:
            cache.store(txn, "mhd", "vorticity", 1, BOX, 5.0, z2, v2)
        with db.transaction() as txn:
            # first entry's chunks cascaded away with its cacheInfo row
            assert cache.data_point_count(txn) == len(z2)
            assert db.table("cacheData").count(txn) == 1  # one packed chunk


class TestMaintenance:
    def test_drop_timestep(self):
        db, cache = make_cache()
        for t in range(3):
            z, v = points_in_box(BOX, 10, seed=t)
            with db.transaction() as txn:
                cache.store(txn, "mhd", "vorticity", t, BOX, 5.0, z, v)
        assert cache.drop_timestep("mhd", "vorticity", 1) == 1
        with db.transaction() as txn:
            assert cache.entry_count(txn) == 2
            assert not cache.lookup(txn, "mhd", "vorticity", 1, BOX, 5.0).hit

    def test_clear(self):
        db, cache = make_cache()
        for t in range(2):
            z, v = points_in_box(BOX, 5, seed=t)
            with db.transaction() as txn:
                cache.store(txn, "mhd", "vorticity", t, BOX, 5.0, z, v)
        assert cache.clear() == 2
        with db.transaction() as txn:
            assert cache.entry_count(txn) == 0
            assert db.table("cacheData").count(txn) == 0

    def test_capacity_validation(self):
        db = Database()
        db.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))
        with pytest.raises(ValueError):
            SemanticCache(db, capacity_bytes=0)

    def test_cache_tables_live_on_ssd_device(self):
        db, cache = make_cache()
        info = db.table("cacheInfo")
        assert info._device.category is Category.CACHE_LOOKUP
