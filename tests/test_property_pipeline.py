"""Property-based tests of the whole query pipeline against ground truth."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.core import PdfQuery, ThresholdQuery, TopKQuery
from repro.grid import Box
from repro.simulation import isotropic_dataset
from repro.fields import curl_periodic
from repro.morton import encode_array

SIDE = 32


@pytest.fixture(scope="module")
def pipeline():
    dataset = isotropic_dataset(side=SIDE, timesteps=2, seed=21)
    mediator = build_cluster(dataset, nodes=4)
    velocity = dataset.field_array("velocity", 0).astype(np.float64)
    norm = np.linalg.norm(
        curl_periodic(velocity, dataset.spec.spacing, 4), axis=-1
    )
    return mediator, norm


boxes = st.builds(
    lambda lo, shape: Box(
        lo, tuple(min(l + s, SIDE) for l, s in zip(lo, shape))
    ),
    st.tuples(*[st.integers(0, SIDE - 1)] * 3),
    st.tuples(*[st.integers(1, SIDE)] * 3),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(box=boxes, quantile=st.floats(0.5, 0.9999))
def test_threshold_matches_ground_truth_on_any_box(pipeline, box, quantile):
    """For arbitrary boxes and thresholds, the engine equals numpy."""
    mediator, norm = pipeline
    threshold = float(np.quantile(norm, quantile))
    result = mediator.threshold(
        ThresholdQuery("isotropic", "vorticity", 0, threshold, box=box),
        use_cache=False,
        max_points=SIDE**3 + 1,
    )
    region = norm[
        box.lo[0]:box.hi[0], box.lo[1]:box.hi[1], box.lo[2]:box.hi[2]
    ]
    mask = region >= threshold
    assert len(result) == mask.sum()
    if mask.any():
        ix, iy, iz = np.nonzero(mask)
        expected = np.sort(
            encode_array(ix + box.lo[0], iy + box.lo[1], iz + box.lo[2])
        )
        assert np.array_equal(result.zindexes, expected)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    quantile_a=st.floats(0.9, 0.9999),
    quantile_b=st.floats(0.9, 0.9999),
)
def test_cache_reuse_never_changes_answers(pipeline, quantile_a, quantile_b):
    """Any interleaving of thresholds yields exactly the cold answer."""
    mediator, norm = pipeline
    for quantile in (quantile_a, quantile_b, quantile_a):
        threshold = float(np.quantile(norm, quantile))
        result = mediator.threshold(
            ThresholdQuery("isotropic", "vorticity", 0, threshold),
            max_points=SIDE**3 + 1,
        )
        assert len(result) == (norm >= threshold).sum()
        assert (result.values >= threshold - 1e-12).all()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(k=st.integers(1, 200))
def test_topk_is_consistent_with_threshold(pipeline, k):
    """top-k values equal the k largest ground-truth norms."""
    mediator, norm = pipeline
    result = mediator.topk(TopKQuery("isotropic", "vorticity", 0, k))
    expected = np.sort(norm.ravel())[-k:][::-1]
    assert np.allclose(result.values, expected, atol=1e-5)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    edges=st.lists(
        st.floats(0.0, 50.0), min_size=2, max_size=8, unique=True
    ).map(lambda e: tuple(sorted(e)))
)
def test_pdf_counts_match_numpy_histogram(pipeline, edges):
    mediator, norm = pipeline
    result = mediator.pdf(
        PdfQuery("isotropic", "vorticity", 0, edges), use_cache=False
    )
    expected, _ = np.histogram(norm, bins=np.append(np.asarray(edges), np.inf))
    assert np.array_equal(result.counts, expected)
