"""Tests for threshold-selection statistics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import norm_rms, threshold_at_rms_multiple, threshold_for_fraction


class TestNormRms:
    def test_constant_field(self):
        assert norm_rms(np.full((4, 4, 4), 3.0)) == pytest.approx(3.0)

    def test_known_values(self):
        assert norm_rms(np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            norm_rms(np.array([]))

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_rms_bounds(self, values):
        rms = norm_rms(np.array(values))
        assert min(values) - 1e-9 <= rms <= max(values) + 1e-9


class TestRmsMultiple:
    def test_multiple(self):
        norm = np.full(10, 2.0)
        assert threshold_at_rms_multiple(norm, 7.0) == pytest.approx(14.0)

    def test_negative_multiple_rejected(self):
        with pytest.raises(ValueError):
            threshold_at_rms_multiple(np.ones(3), -1.0)


class TestFractionThreshold:
    def test_fraction_selects_tail(self):
        norm = np.arange(10000, dtype=float)
        threshold = threshold_for_fraction(norm, 0.01)
        assert np.mean(norm >= threshold) == pytest.approx(0.01, abs=2e-3)

    def test_fraction_one_keeps_everything(self):
        norm = np.arange(100, dtype=float)
        assert threshold_for_fraction(norm, 1.0) <= norm.min()

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            threshold_for_fraction(np.ones(4), 0.0)
        with pytest.raises(ValueError):
            threshold_for_fraction(np.ones(4), 1.5)

    @given(st.floats(1e-4, 0.5))
    def test_monotone_in_fraction(self, fraction):
        rng = np.random.default_rng(0)
        norm = rng.exponential(size=5000)
        tighter = threshold_for_fraction(norm, fraction / 2)
        looser = threshold_for_fraction(norm, fraction)
        assert tighter >= looser
