"""Property-based tests for the cost ledger (COST01's runtime counterpart).

The lint suite forbids wall-clock reads because every reported time must
come from the simulated ledger; these properties pin down the algebra the
engine relies on: charges are non-negative and category totals are exactly
the sum of the charges made against them, under both serial and parallel
composition.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costmodel import Category, CostLedger

categories = st.sampled_from(list(Category))
seconds = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
charges = st.lists(st.tuples(categories, seconds), max_size=50)


@given(charges)
def test_category_totals_equal_sum_of_charges(items):
    ledger = CostLedger()
    for category, amount in items:
        ledger.charge(category, amount)
    for category in Category:
        expected = 0.0
        for item_category, amount in items:
            if item_category is category:
                expected += amount  # same accumulation order as the ledger
        assert ledger[category] == expected
    assert ledger.total == pytest.approx(
        sum(amount for _, amount in items)
    )


@given(
    categories,
    st.floats(max_value=0.0, exclude_max=True, allow_nan=False),
)
def test_negative_charge_rejected_and_ledger_unchanged(category, amount):
    ledger = CostLedger()
    ledger.charge(category, 1.0)
    with pytest.raises(ValueError):
        ledger.charge(category, amount)
    assert ledger[category] == 1.0
    assert ledger.total == 1.0


@given(categories, seconds)
def test_negative_meter_count_rejected(category, amount):
    ledger = CostLedger()
    with pytest.raises(ValueError):
        ledger.count("io_bytes", -1.0 - amount)
    assert ledger.meter("io_bytes") == 0.0


@given(charges, charges)
def test_serial_add_sums_per_category(first, second):
    a, b = CostLedger(), CostLedger()
    for category, amount in first:
        a.charge(category, amount)
    for category, amount in second:
        b.charge(category, amount)
    combined = a.copy()
    combined.add(b)
    for category in Category:
        assert combined[category] == a[category] + b[category]


@given(st.lists(charges, max_size=5))
def test_parallel_takes_per_category_maximum(branch_charges):
    branches = []
    for items in branch_charges:
        ledger = CostLedger()
        for category, amount in items:
            ledger.charge(category, amount)
        branches.append(ledger)
    combined = CostLedger.parallel(branches)
    for category in Category:
        expected = max((b[category] for b in branches), default=0.0)
        assert combined[category] == expected
