"""Chaos proof: kill a replica mid-query, answers stay byte-identical.

A two-node cluster with replication factor 2 (each node holds both
Morton shards) is queried through :class:`~repro.ha.HaTcpTransport`
while one node is killed at the nastiest possible moments — before
answering, mid-PARTIAL-stream, and mid-shm-grant.  Every leg asserts
point-for-point equality with the in-process reference cluster: the
failed shard parts restart clean on the survivor and the gather's
merge produces the same Morton-sorted columns.
"""

from __future__ import annotations

import socket
import threading
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.cluster.mediator import Mediator, build_cluster
from repro.cluster.partition import MortonPartitioner
from repro.core import ThresholdQuery
from repro.ha import HaTcpTransport, PlacementMap
from repro.net.errors import NoLiveReplicaError, PartialFailureError
from repro.net.server import ClusterConfig, NodeServer
from repro.simulation.datasets import mhd_dataset

SIDE = 16
TIMESTEPS = 1
NODES = 2
QUERY = ThresholdQuery("mhd", "vorticity", 0, 0.5)
#: Small chunks so even this toy domain streams many PARTIAL frames.
CHUNK_POINTS = 64


class DyingNodeServer(NodeServer):
    """A node server with chaos switches for abrupt mid-query death.

    ``kill()`` emulates a crashed process as closely as one thread can:
    stop accepting, close the listener, and hard-close every open
    connection socket so clients observe resets/EOF, not clean
    shutdowns.  The switches arm a kill at a specific protocol moment.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.die_before_answer = False
        self.die_after_partials: int | None = None
        self.die_on_hello = False
        self._kill_lock = threading.Lock()
        self.killed = False

    def kill(self) -> None:
        with self._kill_lock:
            if self.killed:
                return
            self.killed = True
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._open_conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def _accept_loop(self):
        try:
            super()._accept_loop()
        except OSError:
            # kill() closes the listener under the accept thread's feet.
            if not self.killed:
                raise

    def _dispatch(self, method, header, blobs):
        if self.die_before_answer and method == "threshold":
            self.die_before_answer = False
            self.kill()
            raise OSError("node killed before answering")
        return super()._dispatch(method, header, blobs)

    def _point_stream(self, items):
        for sent, message in enumerate(super()._point_stream(items)):
            if (
                self.die_after_partials is not None
                and sent >= self.die_after_partials
            ):
                self.die_after_partials = None
                self.kill()
                raise OSError("node killed mid-stream")
            yield message

    def _answer_hello(self, state, request_id, payload):
        if self.die_on_hello:
            self.die_on_hello = False
            self.kill()
            raise OSError("node killed during handshake")
        super()._answer_hello(state, request_id, payload)


def start_cluster(shm: bool = False) -> tuple[list[DyingNodeServer], list[str]]:
    """Two replicated in-thread node servers over loopback, loaded."""
    config = ClusterConfig(
        dataset="mhd",
        side=SIDE,
        timesteps=TIMESTEPS,
        seed=11,
        nodes=NODES,
        cache_capacity_bytes=None,
        replication_factor=2,
    )
    servers = [
        DyingNodeServer(
            i, config, stream_chunk_points=CHUNK_POINTS, shm=shm
        )
        for i in range(NODES)
    ]
    addresses = [f"127.0.0.1:{s.port}" for s in servers]
    for server in servers:
        server.connect_peers(addresses)
        server.load()
        server.start()
    return servers, addresses


def make_ha_mediator(addresses: list[str], **transport_kwargs) -> Mediator:
    transport = HaTcpTransport(
        addresses,
        placement=PlacementMap(NODES, NODES, 2),
        timeout=30.0,
        **transport_kwargs,
    )
    return Mediator(
        nodes=[],
        partitioner=MortonPartitioner(SIDE, NODES),
        transport=transport,
        cache_capacity_bytes=None,
        scatter_timeout=120.0,
    )


def prefer(mediator: Mediator, victim: int) -> None:
    """Seed the router so every shard routes to ``victim`` first.

    Chaos must be deterministic: the kill switch only fires if the
    armed node actually receives the query part, so we teach the
    latency-aware router that the victim is the fast replica.
    """
    router = mediator.transport.router
    router.record_success(victim, 0.0001)
    router.record_success(1 - victim, 10.0)


@pytest.fixture(scope="module")
def reference():
    """The in-process cluster's answer — the byte-identity oracle."""
    dataset = mhd_dataset(side=SIDE, timesteps=TIMESTEPS, seed=11)
    with build_cluster(dataset, nodes=NODES, cache_capacity_bytes=None) as mediator:
        result = mediator.threshold(QUERY, use_cache=False)
        yield result.zindexes.copy(), result.values.copy()


def assert_identical(result, reference) -> None:
    zindexes, values = reference
    assert np.array_equal(result.zindexes, zindexes)
    assert np.array_equal(result.values, values)


@pytest.mark.parametrize("victim", [0, 1])
def test_replicated_cluster_answers_without_failures(victim, reference):
    # Baseline: replication changes placement, not answers.
    servers, addresses = start_cluster()
    try:
        with make_ha_mediator(addresses) as mediator:
            assert_identical(
                mediator.threshold(QUERY, use_cache=False), reference
            )
            # Both nodes ingested both shards.
            for server in servers:
                assert server.placement.shards_of(server.node_id) == (0, 1)
    finally:
        for server in servers:
            server.shutdown()
    del victim  # placement is symmetric; parametrize documents intent


@pytest.mark.parametrize("victim", [0, 1])
def test_kill_before_answer_monolithic(victim, reference):
    servers, addresses = start_cluster()
    try:
        with make_ha_mediator(addresses) as mediator:
            prefer(mediator, victim)
            servers[victim].die_before_answer = True
            result = mediator.threshold(QUERY, use_cache=False)
            assert_identical(result, reference)
            assert servers[victim].killed
            # The survivor actually served: its EWMA moved off the seed.
            assert mediator.transport.router.latency(1 - victim) != 10.0
    finally:
        for server in servers:
            server.shutdown()


@pytest.mark.parametrize("victim", [0, 1])
def test_kill_mid_partial_stream(victim, reference):
    servers, addresses = start_cluster()
    try:
        with make_ha_mediator(addresses) as mediator:
            prefer(mediator, victim)
            # Warm the connections so the kill hits an active stream.
            mediator.transport.ping(victim)
            servers[victim].die_after_partials = 2
            result = mediator.threshold(QUERY, use_cache=False)
            assert_identical(result, reference)
            assert servers[victim].killed
    finally:
        for server in servers:
            server.shutdown()


def test_kill_mid_shm_grant(reference):
    # The victim dies during the HELLO exchange, after the client
    # created and advertised its shared-memory ring: the client must
    # unlink the ring and fail over cleanly.
    servers, addresses = start_cluster(shm=True)
    victim = 0
    try:
        with make_ha_mediator(addresses, shm=True) as mediator:
            prefer(mediator, victim)
            servers[victim].die_on_hello = True
            result = mediator.threshold(QUERY, use_cache=False)
            assert_identical(result, reference)
            assert servers[victim].killed
            # No pipe (and no ring) survives to the dead node.
            assert mediator.transport.pools[victim]._pipes == []
    finally:
        for server in servers:
            server.shutdown()


def test_kill_mid_shm_stream_unlinks_ring(reference):
    # A streamed response is flowing through the victim's ring when it
    # dies: the client must discard the pipelined connection, unlink
    # the ring segment, and the retried part must land on the survivor
    # over plain TCP with an identical answer.
    servers, addresses = start_cluster(shm=True)
    victim = 0
    try:
        with make_ha_mediator(addresses, shm=True) as mediator:
            prefer(mediator, victim)
            mediator.transport.ping(victim)  # dial + handshake the ring
            pool = mediator.transport.pools[victim]
            assert pool._pipes, "expected a live pipelined connection"
            pipe = pool._pipes[0]
            ring = pipe._ring
            assert ring is not None, "server should have accepted the grant"
            ring_name = ring.name
            servers[victim].die_after_partials = 2
            result = mediator.threshold(QUERY, use_cache=False)
            assert_identical(result, reference)
            # The dead peer's pipe was evicted and its ring unlinked.
            assert pipe not in pool._pipes
            assert pipe._ring is None
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=ring_name)
    finally:
        for server in servers:
            server.shutdown()


def test_both_replicas_dead_raises_partial_failure(reference):
    servers, addresses = start_cluster()
    try:
        with make_ha_mediator(addresses) as mediator:
            # A healthy query first, so the failure below hits the
            # scatter itself rather than the one-time describe.
            assert_identical(
                mediator.threshold(QUERY, use_cache=False), reference
            )
            for server in servers:
                server.kill()
            with pytest.raises(PartialFailureError) as excinfo:
                mediator.threshold(QUERY, use_cache=False)
            error = excinfo.value
            # Machine-readable blast radius: both replicas named, the
            # failed shard's Morton range attached.
            assert set(error.node_ids) == {0, 1}
            assert len(error.ranges) == 1
            cause = error.__cause__
            assert isinstance(cause, NoLiveReplicaError)
            assert set(cause.attempted) == {0, 1}
    finally:
        for server in servers:
            server.shutdown()
