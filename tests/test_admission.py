"""Unit tests for the front door's admission-control state machine."""

import pytest

from repro.cluster.admission import (
    AdmissionController,
    QueueFullError,
    QueueWaitExceededError,
    QuotaExceededError,
    ShedError,
    TokenBucket,
    classify,
)
from repro.obs.metrics import MetricsRegistry


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        assert bucket.take(0.0) == 0.0
        assert bucket.take(0.0) == 0.0
        # Empty: the third take reports the time until one token accrues.
        assert bucket.take(0.0) == pytest.approx(0.5)
        # Tokens accrue at `rate`; after 0.5s one is back.
        assert bucket.take(0.5) == 0.0
        assert bucket.take(0.5) == pytest.approx(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0, now=0.0)
        assert bucket.take(1000.0) == 0.0  # a long sleep buys only `burst`
        assert bucket.take(1000.0) == 0.0
        assert bucket.take(1000.0) == 0.0
        assert bucket.take(1000.0) > 0.0

    def test_failed_take_consumes_nothing(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, now=0.0)
        assert bucket.take(0.0) == 0.0
        before = bucket.tokens
        assert bucket.take(0.0) > 0.0
        assert bucket.tokens == before

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


class TestClassify:
    def test_light_methods_outrank_queries(self):
        light_class, light_priority = classify("GetStats")
        query_class, query_priority = classify("GetThreshold")
        assert light_class == "light" and query_class == "query"
        assert light_priority < query_priority

    def test_unknown_methods_ride_the_query_class(self):
        assert classify("NoSuchMethod") == classify("GetThreshold")


def controller(**overrides) -> AdmissionController:
    defaults = dict(
        tenant_rate=1000.0,
        tenant_burst=1000.0,
        max_queue_depth=4,
        max_queue_wait=2.0,
        workers=1,
    )
    defaults.update(overrides)
    return AdmissionController(MetricsRegistry(), **defaults)


class TestQuota:
    def test_tenant_bucket_exhaustion_is_429(self):
        ctl = controller(tenant_rate=5.0, tenant_burst=2.0)
        ctl.admit("alice", "GetThreshold", now=0.0)
        ctl.admit("alice", "GetThreshold", now=0.0)
        with pytest.raises(QuotaExceededError) as info:
            ctl.admit("alice", "GetThreshold", now=0.0)
        assert info.value.http_status == 429
        assert info.value.retry_after_s >= 0.05
        response = info.value.to_response()
        assert response["status"] == "error"
        assert response["code"] == "quota_exceeded"
        assert response["retry_after_s"] > 0.0

    def test_tenants_are_isolated(self):
        ctl = controller(tenant_rate=5.0, tenant_burst=1.0)
        ctl.admit("alice", "GetThreshold", now=0.0)
        with pytest.raises(QuotaExceededError):
            ctl.admit("alice", "GetThreshold", now=0.0)
        ctl.admit("bob", "GetThreshold", now=0.0)  # bob's bucket is full

    def test_tenant_overrides_beat_the_default(self):
        ctl = controller(
            tenant_rate=1.0,
            tenant_burst=1.0,
            max_queue_depth=100,
            tenant_overrides={"vip": (100.0, 10.0)},
        )
        for _ in range(10):
            ctl.admit("vip", "GetThreshold", now=0.0)
        ctl.admit("pleb", "GetThreshold", now=0.0)
        with pytest.raises(QuotaExceededError):
            ctl.admit("pleb", "GetThreshold", now=0.0)


class TestBackpressure:
    def test_depth_cap_sheds_with_503(self):
        ctl = controller(max_queue_depth=2)
        ctl.admit("t", "GetThreshold", now=0.0)
        ctl.admit("t", "GetThreshold", now=0.0)
        with pytest.raises(QueueFullError) as info:
            ctl.admit("t", "GetThreshold", now=0.0)
        assert info.value.http_status == 503
        assert "full" in str(info.value)

    def test_start_frees_a_depth_slot(self):
        ctl = controller(max_queue_depth=2)
        first = ctl.admit("t", "GetThreshold", now=0.0)
        ctl.admit("t", "GetThreshold", now=0.0)
        assert ctl.queue_depth == 2
        ctl.start(first, now=0.1)
        assert ctl.queue_depth == 1
        ctl.admit("t", "GetThreshold", now=0.2)  # slot is usable again

    def test_abandon_frees_a_depth_slot(self):
        ctl = controller(max_queue_depth=1)
        ticket = ctl.admit("t", "GetThreshold", now=0.0)
        ctl.abandon(ticket)
        assert ctl.queue_depth == 0
        ctl.admit("t", "GetThreshold", now=0.0)

    def test_projected_wait_sheds_before_the_queue_is_hopeless(self):
        ctl = controller(max_queue_depth=100, max_queue_wait=0.5, workers=1)
        ticket = ctl.admit("t", "GetThreshold", now=0.0)
        ctl.start(ticket, now=0.0)
        # One completed request taking 1s seeds the EWMA: with one
        # queued request ahead and one worker, projected wait is ~1s,
        # over the 0.5s budget.
        ctl.finish(ticket, queue_wait=0.0, service_seconds=1.0)
        ctl.admit("t", "GetThreshold", now=0.0)
        with pytest.raises(QueueFullError) as info:
            ctl.admit("t", "GetThreshold", now=0.0)
        assert "projected" in str(info.value)

    def test_queue_age_out_at_dequeue(self):
        ctl = controller(max_queue_wait=1.0)
        ticket = ctl.admit("t", "GetThreshold", now=0.0)
        with pytest.raises(QueueWaitExceededError) as info:
            ctl.start(ticket, now=5.0)
        assert info.value.http_status == 503
        assert ctl.queue_depth == 0  # the slot is released either way

    def test_fresh_request_reports_its_wait(self):
        ctl = controller(max_queue_wait=1.0)
        ticket = ctl.admit("t", "GetThreshold", now=0.0)
        assert ctl.start(ticket, now=0.25) == pytest.approx(0.25)


class TestInstrumentation:
    def test_shed_reasons_are_counted(self):
        registry = MetricsRegistry()
        ctl = AdmissionController(
            registry,
            tenant_rate=5.0,
            tenant_burst=1.0,
            max_queue_depth=1,
            max_queue_wait=1.0,
            workers=1,
        )
        ctl.admit("t", "GetThreshold", now=0.0)
        with pytest.raises(QuotaExceededError):
            ctl.admit("t", "GetThreshold", now=0.0)
        with pytest.raises(QueueFullError):
            ctl.admit("u", "GetThreshold", now=0.0)
        sheds = registry.get("aio_sheds_total")
        assert sheds.labels(reason="quota").value == 1.0
        assert sheds.labels(reason="queue_full").value == 1.0
        assert registry.get("aio_queue_depth").value == 1.0

    def test_queue_wait_histogram_carries_exemplars(self):
        registry = MetricsRegistry()
        ctl = AdmissionController(registry, workers=1)
        ticket = ctl.admit("t", "GetThreshold", now=0.0)
        waited = ctl.start(ticket, now=0.1)
        ctl.finish(ticket, waited, 0.05, exemplar="q-42")
        family = registry.get("aio_queue_wait_seconds")
        exemplars = family.labels(klass="query").exemplars()
        assert any(trace == "q-42" for trace, _, _ in exemplars.values())

    def test_ewma_converges_toward_recent_service_times(self):
        ctl = controller()
        ticket = ctl.admit("t", "GetThreshold", now=0.0)
        ctl.start(ticket, now=0.0)
        ctl.finish(ticket, 0.0, 1.0)
        for _ in range(50):
            ctl.finish(ticket, 0.0, 0.1)
        assert ctl.service_ewma == pytest.approx(0.1, rel=0.1)


def test_shed_error_retry_floor():
    shed = ShedError("too hot", retry_after_s=0.0001)
    assert shed.retry_after_s == pytest.approx(0.05)
    assert shed.to_response()["code"] == "overloaded"
