"""CLI surface added with turbscan: JSON output, baselines, SUP01.

The framework basics (exit codes, --select, --list-checkers) live in
``test_lint_framework.py``; these tests cover the CI-facing additions.
"""

import json

from repro.lint.cli import (
    EXIT_CLEAN,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    main,
    run_paths,
)


def _violating_file(tmp_path):
    """A file inside a synthetic repro.storage module that trips OBS01."""
    root = tmp_path / "src" / "repro" / "storage"
    root.mkdir(parents=True)
    path = root / "noisy.py"
    path.write_text(
        '"""Fixture."""\n\n\ndef shout():\n    """Shout."""\n'
        '    print("hi")\n'
    )
    return path


def test_json_format_is_machine_readable(tmp_path, capsys):
    bad = _violating_file(tmp_path)
    assert main([str(bad), "--format", "json"]) == EXIT_VIOLATIONS
    payload = json.loads(capsys.readouterr().out)
    assert payload["files"] == 1
    assert payload["count"] == len(payload["diagnostics"]) >= 1
    diag = payload["diagnostics"][0]
    assert diag["code"] == "OBS01"
    assert diag["path"] == str(bad)
    assert isinstance(diag["line"], int)


def test_baseline_roundtrip_suppresses_known_findings(tmp_path, capsys):
    bad = _violating_file(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert (
        main([str(bad), "--write-baseline", str(baseline)]) == EXIT_CLEAN
    )
    capsys.readouterr()
    assert main([str(bad), "--baseline", str(baseline)]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "suppressed by baseline" in out
    # A brand-new class of finding in the same file still fails the
    # gate (a second identical print would share the old fingerprint —
    # baseline identity is deliberately line-independent).
    bad.write_text(
        bad.read_text() + '\n\ndef now():\n    """Now."""\n'
        "    import time\n"
        "    return time.time()\n"
    )
    assert main([str(bad), "--baseline", str(baseline)]) == EXIT_VIOLATIONS


def test_missing_baseline_is_a_usage_error(tmp_path, capsys):
    bad = _violating_file(tmp_path)
    assert (
        main([str(bad), "--baseline", str(tmp_path / "nope.json")])
        == EXIT_USAGE
    )
    assert "no such baseline" in capsys.readouterr().err


def test_sup01_flags_stale_suppression(tmp_path):
    root = tmp_path / "src" / "repro" / "storage"
    root.mkdir(parents=True)
    path = root / "quiet.py"
    path.write_text(
        '"""Fixture."""\n\nVALUE = 1  # turblint: disable=OBS01\n'
    )
    diagnostics, _ = run_paths([path])
    assert [d.code for d in diagnostics] == ["SUP01"]
    assert "stale suppression" in diagnostics[0].message


def test_sup01_keeps_live_suppressions(tmp_path):
    root = tmp_path / "src" / "repro" / "storage"
    root.mkdir(parents=True)
    path = root / "quiet.py"
    path.write_text(
        '"""Fixture."""\n\n\ndef shout():\n    """Shout."""\n'
        '    print("hi")  # turblint: disable=OBS01\n'
    )
    diagnostics, _ = run_paths([path])
    assert diagnostics == []


def test_sup01_ignores_directives_quoted_in_docstrings(tmp_path):
    root = tmp_path / "src" / "repro" / "storage"
    root.mkdir(parents=True)
    path = root / "quiet.py"
    path.write_text(
        '"""Fixture.\n\nExample::\n\n'
        "    x = 1  # turblint: disable=OBS01\n"
        '"""\n'
    )
    diagnostics, _ = run_paths([path])
    assert diagnostics == []


def test_sup01_not_judged_for_unrun_checkers(tmp_path):
    root = tmp_path / "src" / "repro" / "storage"
    root.mkdir(parents=True)
    path = root / "quiet.py"
    path.write_text(
        '"""Fixture."""\n\nVALUE = 1  # turblint: disable=OBS01\n'
    )
    # OBS01 never ran, so its directive cannot be judged stale.
    diagnostics, _ = run_paths([path], select=["SUP01", "COST01"])
    assert diagnostics == []


def test_witness_flag_feeds_lock02(tmp_path, capsys):
    witness = tmp_path / "witness.json"
    witness.write_text('{"edges": []}')
    assert main(["src", "--witness", str(witness)]) == EXIT_CLEAN
    assert "0 issue(s) found" in capsys.readouterr().out
