"""Tests for the experiment harness plumbing (small, fast configs)."""

import pytest

from repro.costmodel import paper_scale_spec
from repro.harness.common import (
    PAPER_FRACTIONS,
    ExperimentConfig,
    ExperimentReport,
    fmt,
    ground_truth_norm,
    threshold_levels,
)
from repro.simulation import mhd_dataset


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(side=32, timesteps=2)


class TestExperimentConfig:
    def test_default_spec_is_paper_scaled(self, tiny_config):
        assert tiny_config.spec.hdd.stream_mib_s == pytest.approx(
            paper_scale_spec(32).hdd.stream_mib_s
        )

    def test_paper_scale_factor(self, tiny_config):
        assert tiny_config.paper_scale_factor == (1024 / 32) ** 3

    def test_make_cluster_is_sequential(self, tiny_config):
        _, mediator = tiny_config.make_cluster()
        assert mediator.sequential_scatter

    def test_explicit_spec_respected(self):
        from repro.costmodel import paper_cluster

        config = ExperimentConfig(side=32, timesteps=2, spec=paper_cluster())
        assert config.spec.hdd.stream_mib_s == 25.0


class TestThresholdLevels:
    def test_levels_ordered(self, tiny_config):
        dataset = tiny_config.make_dataset()
        levels = threshold_levels(dataset, "vorticity", 0)
        assert levels["high"] > levels["medium"] > levels["low"]

    def test_levels_match_fractions(self, tiny_config):
        import numpy as np

        dataset = tiny_config.make_dataset()
        norm = ground_truth_norm(dataset, "vorticity", 0)
        levels = threshold_levels(dataset, "vorticity", 0)
        for name, fraction in PAPER_FRACTIONS.items():
            measured = float(np.mean(norm >= levels[name]))
            assert measured <= max(4 * fraction, 4 / norm.size)

    def test_ground_truth_all_fields(self, tiny_config):
        dataset = tiny_config.make_dataset()
        for field in (
            "vorticity", "q_criterion", "electric_current",
            "magnetic", "velocity", "pressure",
        ):
            norm = ground_truth_norm(dataset, field, 0)
            assert norm.shape == (32, 32, 32)
            assert (norm >= 0).all()

    def test_unknown_field_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            ground_truth_norm(tiny_config.make_dataset(), "enstrophy", 0)


class TestExperimentReport:
    def test_renders_table(self):
        report = ExperimentReport(
            "Demo", ["a", "b"], [[1, "x"], [22, "yy"]], notes=["n1"]
        )
        text = str(report)
        assert "Demo" in text
        assert "note: n1" in text
        assert text.count("\n") >= 5

    def test_row_dict(self):
        report = ExperimentReport("t", ["k", "v"], [["x", 1], ["y", 2]])
        assert report.row_dict()["y"] == ["y", 2]


class TestFmt:
    def test_ranges(self):
        assert fmt(7200) == "2.0 h"
        assert fmt(150) == "150 s"
        assert fmt(2.5) == "2.5 s"
        assert fmt(0.05) == "50 ms"


class TestSmallExperimentRuns:
    """Each harness experiment runs end-to-end on a tiny grid."""

    def test_fig2(self, tiny_config):
        from repro.harness import fig2_pdf

        report = fig2_pdf.run(tiny_config)
        assert sum(row[1] for row in report.rows) == 32**3

    def test_table1(self, tiny_config):
        from repro.harness import table1_fig6

        report = table1_fig6.run(tiny_config)
        assert len(report.rows) == 3
        for row in report.rows:
            assert float(row[4]) / float(row[5]) > 5  # miss/hit

    def test_local_vs_integrated(self, tiny_config):
        from repro.harness import local_vs_integrated

        report = local_vs_integrated.run(tiny_config)
        assert len(report.rows) == 3

    def test_fig3_fig4(self, tiny_config):
        from repro.harness import fig3_fig4

        report = fig3_fig4.run(tiny_config)
        assert any(row[0] == "points above threshold" for row in report.rows)

    def test_fig8(self, tiny_config):
        from repro.harness import fig8

        report = fig8.run(tiny_config)
        assert [row[0] for row in report.rows] == [1, 2, 4, 8]
        totals = [float(row[1]) for row in report.rows]
        assert totals == sorted(totals, reverse=True)  # more procs, faster

    def test_fig9(self, tiny_config):
        from repro.harness import fig9

        report = fig9.run(tiny_config)
        assert len(report.rows) == 18  # 3 fields x 3 levels x {miss, hit}
        by_key = {(r[0], r[1], r[2]): r for r in report.rows}
        q_compute = float(by_key[("q_criterion", "medium", "miss")][6])
        v_compute = float(by_key[("vorticity", "medium", "miss")][6])
        assert q_compute > v_compute

    def test_fig7_scaleout_small(self):
        from repro.harness import fig7

        config = ExperimentConfig(side=32, timesteps=1)
        report = fig7.run_scaleout(config)
        speedups = [float(row[2].rstrip("x")) for row in report.rows]
        assert speedups[0] == 1.0
        assert speedups[-1] > 4.0  # 8 nodes, near-linear even at 32^3
