"""Tests for the intense-vortex structure population."""

import numpy as np
import pytest

from repro.fields import curl_periodic, divergence_periodic
from repro.simulation.structures import (
    StructureParams,
    _envelope,
    add_structures,
)

SIDE = 32
SPACING = 2 * np.pi / SIDE


def quiet_field():
    return np.zeros((SIDE, SIDE, SIDE, 3))


class TestParams:
    def test_defaults_valid(self):
        params = StructureParams()
        assert params.count > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            StructureParams(count=-1)
        with pytest.raises(ValueError):
            StructureParams(radius=0)
        with pytest.raises(ValueError):
            StructureParams(peak_multiple=0)


class TestEnvelope:
    def test_zero_outside_lifetime(self):
        assert _envelope(5.0, 0.0, 4.0) == 0.0
        assert _envelope(-1.0, 0.0, 4.0) == 0.0

    def test_peaks_mid_life(self):
        assert _envelope(2.0, 0.0, 4.0) == pytest.approx(1.0)

    def test_zero_at_birth_and_death(self):
        assert _envelope(0.0, 0.0, 4.0) == pytest.approx(0.0)
        assert _envelope(4.0, 0.0, 4.0) == pytest.approx(0.0, abs=1e-12)

    def test_degenerate_lifetime(self):
        assert _envelope(1.0, 1.0, 1.0) == 0.0


class TestAddStructures:
    def test_deterministic(self):
        params = StructureParams(count=3)
        a = add_structures(quiet_field(), 1, params, 4, 9, SPACING, 1.0)
        b = add_structures(quiet_field(), 1, params, 4, 9, SPACING, 1.0)
        assert np.array_equal(a, b)

    def test_zero_count_is_identity(self):
        params = StructureParams(count=0)
        out = add_structures(quiet_field(), 0, params, 4, 9, SPACING, 1.0)
        assert np.allclose(out, 0)

    def test_structures_are_divergence_free(self):
        params = StructureParams(count=4, radius=3.0)
        out = add_structures(quiet_field(), 1, params, 4, 9, SPACING, 1.0)
        div = divergence_periodic(out, SPACING, 8)
        scale = np.abs(out).max() / SPACING
        assert np.abs(div).max() / scale < 0.05

    def test_peak_vorticity_near_target(self):
        """On a quiet background the blob's peak |curl| ~ peak_multiple."""
        params = StructureParams(count=1, radius=3.0, peak_multiple=10.0)
        out = add_structures(quiet_field(), 0, params, 1, 3, SPACING, 1.0)
        vorticity = np.linalg.norm(curl_periodic(out, SPACING, 8), axis=-1)
        # Blob 0 is the persistent one; at t=0 of a 1-step series its
        # envelope is sin(pi/3) ~ 0.87.
        assert 5.0 <= vorticity.max() <= 12.0

    def test_structures_drift_between_timesteps(self):
        params = StructureParams(count=1, radius=3.0, drift=1.5)
        a = add_structures(quiet_field(), 0, params, 4, 5, SPACING, 1.0)
        b = add_structures(quiet_field(), 1, params, 4, 5, SPACING, 1.0)
        peak_a = np.unravel_index(
            np.abs(a).sum(axis=-1).argmax(), (SIDE, SIDE, SIDE)
        )
        peak_b = np.unravel_index(
            np.abs(b).sum(axis=-1).argmax(), (SIDE, SIDE, SIDE)
        )
        moved = max(
            min(abs(x - y), SIDE - abs(x - y)) for x, y in zip(peak_a, peak_b)
        )
        assert 0 < moved <= 4

    def test_background_preserved(self):
        rng = np.random.default_rng(0)
        background = rng.normal(size=(SIDE, SIDE, SIDE, 3))
        params = StructureParams(count=1, radius=2.0)
        out = add_structures(background, 0, params, 2, 7, SPACING, 1.0)
        # Far from the blob the field is unchanged; overall the blob is
        # localized, so most points move very little.
        delta = np.abs(out - background).sum(axis=-1)
        assert np.median(delta) < 1e-3

    def test_persistent_blob_active_at_every_timestep(self):
        params = StructureParams(count=1, radius=3.0, peak_multiple=8.0)
        for t in range(4):
            out = add_structures(quiet_field(), t, params, 4, 1, SPACING, 1.0)
            assert np.abs(out).max() > 0.1
