"""Shared fixtures: a small MHD cluster reused across test modules.

Also hosts the opt-in lock-order sanitizer hooks: ``REPRO_SANITIZE=1``
installs :mod:`repro.sanitize` for the whole session, exports the
witnessed lock-order edge set (``REPRO_SANITIZE_WITNESS``, default
``lock-witness.json``) at session end, and fails the run if any lock
inversion was witnessed.
"""

import os

import pytest

from repro.cluster import build_cluster
from repro.simulation import mhd_dataset


def _sanitize_enabled() -> bool:
    from repro.sanitize import SANITIZE_ENV

    return os.environ.get(SANITIZE_ENV) == "1"


def pytest_sessionstart(session):
    """Install the lock sanitizer before any test module runs."""
    if _sanitize_enabled():
        from repro import sanitize

        sanitize.install()


def pytest_sessionfinish(session, exitstatus):
    """Export the lock-order witness and fail on witnessed inversions."""
    if not _sanitize_enabled():
        return
    from repro import sanitize
    from repro.sanitize import WITNESS_ENV

    path = os.environ.get(WITNESS_ENV, "lock-witness.json")
    payload = sanitize.export_witness(path)
    sanitize.uninstall()
    if payload["inversions"] and session.exitstatus == 0:
        session.exitstatus = pytest.ExitCode.TESTS_FAILED


def pytest_terminal_summary(terminalreporter):
    """One line of sanitizer accounting at the end of the run."""
    if not _sanitize_enabled():
        return
    from repro import sanitize

    reg = sanitize.registry()
    terminalreporter.write_line(
        f"repro.sanitize: {len(reg.edges)} lock-order edge(s) witnessed, "
        f"{len(reg.blocking)} held-across-I/O pattern(s), "
        f"{len(reg.inversions)} inversion(s)"
    )
    for message in reg.inversions:
        terminalreporter.write_line(f"repro.sanitize: {message}")


@pytest.fixture(scope="session")
def small_mhd():
    """A 32^3, 2-timestep MHD dataset (session-wide, read-only)."""
    return mhd_dataset(side=32, timesteps=2)


@pytest.fixture()
def mhd_cluster(small_mhd):
    """A fresh 4-node cluster loaded with the small MHD dataset."""
    return build_cluster(small_mhd, nodes=4)
