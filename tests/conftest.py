"""Shared fixtures: a small MHD cluster reused across test modules."""

import pytest

from repro.cluster import build_cluster
from repro.simulation import mhd_dataset


@pytest.fixture(scope="session")
def small_mhd():
    """A 32^3, 2-timestep MHD dataset (session-wide, read-only)."""
    return mhd_dataset(side=32, timesteps=2)


@pytest.fixture()
def mhd_cluster(small_mhd):
    """A fresh 4-node cluster loaded with the small MHD dataset."""
    return build_cluster(small_mhd, nodes=4)
