"""Data-plane tests: codec negotiation edges, pipelining faults, streaming.

Covers the contract the fast path rests on:

* a peer that advertises no codecs gets raw frames (and vice versa);
* corrupted compressed payloads surface as typed :class:`FrameError`,
  never a bare ``zlib.error``;
* a pipelined connection that loses its socket mid-flight fails *all*
  outstanding requests with :class:`ConnectionLostError`, and the pool
  discards the carcass;
* responses larger than the server's chunk size arrive as two or more
  ``PARTIAL`` frames whose merged columns are byte-identical to the
  monolithic path.
"""

import socket
import threading

import numpy as np
import pytest

from repro.cluster.mediator import Mediator
from repro.cluster.partition import MortonPartitioner
from repro.core import ThresholdQuery
from repro.net import codec
from repro.net.client import NodeClient, PipelinedConnection, RetryPolicy
from repro.net.compress import (
    CompressionConfig,
    DEFAULT_COMPRESSION,
    FrameCodec,
    NO_COMPRESSION,
    negotiate,
)
from repro.net.errors import (
    ConnectionLostError,
    FrameError,
    NodeUnavailableError,
)
from repro.net.frame import (
    Deadline,
    FrameType,
    HEADER,
    MAGIC,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)
from repro.net.pool import ConnectionPool
from repro.net.server import ClusterConfig, NodeServer
from repro.net.transport import TcpTransport

SIDE = 16
CONFIG = ClusterConfig(
    dataset="mhd", side=SIDE, timesteps=1, seed=23, nodes=1
)
FAST_RETRY = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.05)


def start_node(**kwargs):
    """One in-thread node server hosting the small test dataset."""
    server = NodeServer(0, CONFIG, **kwargs)
    server.load()
    server.start()
    return server


# -- codec negotiation -----------------------------------------------------------


def test_negotiate_prefers_local_order():
    assert negotiate(("zlib",), ["zlib", "none"]) == "zlib"
    assert negotiate(("zlib",), []) == "none"
    assert negotiate((), ["zlib"]) == "none"
    assert negotiate(("zlib",), ["lz5", "snappy"]) == "none"


def test_peer_without_codecs_gets_raw_frames():
    """A server that advertises nothing falls back to raw frames."""
    server = start_node(compression=NO_COMPRESSION)
    try:
        client = NodeClient(
            "127.0.0.1", server.port, Deadline.after(5),
            compression=DEFAULT_COMPRESSION,
        )
        try:
            assert client._codec.codec == "none"
            blob = b"a" * 65536  # would compress ~1000x if negotiated
            result = client.call(
                "echo", {}, [blob], Deadline.after(10)
            )
            assert bytes(result.blobs[0]) == blob
            # Raw on the wire: the response carries the full blob.
            assert result.bytes_received > len(blob)
        finally:
            client.close()
    finally:
        server.shutdown()


def test_client_without_codecs_forces_raw_frames():
    """The negotiation is symmetric: a raw-only client stays raw."""
    server = start_node()
    try:
        client = NodeClient(
            "127.0.0.1", server.port, Deadline.after(5),
            compression=NO_COMPRESSION,
        )
        try:
            assert client._codec.codec == "none"
            result = client.call(
                "echo", {}, [b"b" * 65536], Deadline.after(10)
            )
            assert result.bytes_received > 65536
        finally:
            client.close()
    finally:
        server.shutdown()


def test_negotiated_zlib_shrinks_both_directions():
    """With zlib agreed, request and response both ride compressed."""
    server = start_node()
    try:
        ratios: list[float] = []
        client = NodeClient(
            "127.0.0.1", server.port, Deadline.after(5),
            on_ratio=ratios.append,
        )
        try:
            assert client._codec.codec == "zlib"
            blob = b"c" * (1024 * 1024)
            result = client.call("echo", {}, [blob], Deadline.after(30))
            assert bytes(result.blobs[0]) == blob
            assert result.bytes_sent < len(blob) // 10
            assert result.bytes_received < len(blob) // 10
            assert ratios and max(ratios) > 10.0
        finally:
            client.close()
    finally:
        server.shutdown()


def test_corrupt_compressed_payload_is_a_typed_frame_error():
    """Garbage under a zlib flag is a FrameError, never zlib.error."""
    config = CompressionConfig(codecs=("zlib",))
    rx = FrameCodec(config, codec="zlib")
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    try:
        garbage = b"this is definitely not a zlib stream"
        left.sendall(
            HEADER.pack(
                MAGIC, PROTOCOL_VERSION, int(FrameType.RESPONSE),
                1, 7, len(garbage),
            )
            + garbage
        )
        with pytest.raises(FrameError, match="corrupt zlib"):
            recv_frame(right, Deadline.after(5), codec=rx)
    finally:
        left.close()
        right.close()


def test_unknown_codec_ids_are_frame_errors():
    config = CompressionConfig(codecs=("zlib",))
    rx = FrameCodec(config, codec="zlib")
    with pytest.raises(FrameError, match="unknown frame codec id"):
        rx.decode(200, b"x")
    # Codec id 1 is zlib; a peer using it against a raw-only config is
    # speaking a codec we never advertised.
    raw_only = FrameCodec(NO_COMPRESSION, codec="none")
    with pytest.raises(FrameError):
        raw_only.decode(1, b"x")


def test_compression_config_validation():
    with pytest.raises(ValueError):
        CompressionConfig(codecs=("brotli",))
    with pytest.raises(ValueError):
        CompressionConfig(level=42)
    with pytest.raises(ValueError):
        CompressionConfig(min_payload_bytes=-1)


# -- pipelined connections -------------------------------------------------------


class _HandshakeThenDropServer:
    """Speaks a valid handshake, then kills the socket after N requests.

    The drop happens from the *server* side while client requests are
    still outstanding — the exact mid-flight failure the pipelined
    connection must translate into ConnectionLostError for everyone.
    """

    def __init__(self, drop_after: int = 1):
        self.drop_after = drop_after
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._running = True
        self.requests_seen = 0
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                self._serve(conn)
            except Exception:
                pass
            finally:
                conn.close()

    def _serve(self, conn):
        conn.settimeout(5.0)
        hello = recv_frame(conn, Deadline.after(10), eof_ok=True)
        if hello is None:
            return
        send_frame(
            conn,
            FrameType.HELLO_ACK,
            hello.request_id,
            codec.encode_message(
                {
                    "protocol": PROTOCOL_VERSION,
                    "node_id": 0,
                    "codecs": [],
                    "codec": "none",
                }
            ),
            Deadline.after(10),
        )
        seen = 0
        while self._running and seen < self.drop_after:
            frame = recv_frame(conn, Deadline.after(30), eof_ok=True)
            if frame is None:
                return
            seen += 1
            self.requests_seen += 1
        # Abrupt close with requests still unanswered.

    def close(self):
        self._running = False
        self._listener.close()
        self._thread.join(timeout=5)


def test_midflight_socket_loss_fails_all_outstanding_requests():
    server = _HandshakeThenDropServer(drop_after=3)
    pipe = None
    try:
        pipe = PipelinedConnection(
            "127.0.0.1", server.port, Deadline.after(5)
        )
        errors: list[Exception] = []
        barrier = threading.Barrier(3)

        def call():
            barrier.wait(timeout=5)
            try:
                pipe.call("threshold", {"x": 1}, (), Deadline.after(30))
            except Exception as error:
                errors.append(error)

        threads = [threading.Thread(target=call) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        # Every outstanding request failed, with the typed error.
        assert len(errors) == 3
        assert all(isinstance(e, ConnectionLostError) for e in errors)
        assert not pipe.usable
        assert pipe.in_flight == 0
        # New calls are refused immediately.
        with pytest.raises(ConnectionLostError):
            pipe.call("threshold", {}, (), Deadline.after(5))
    finally:
        if pipe is not None:
            pipe.close()
        server.close()


def test_pool_discards_a_dead_pipelined_connection():
    server = _HandshakeThenDropServer(drop_after=1)
    pool = ConnectionPool(
        "127.0.0.1",
        server.port,
        retry=RetryPolicy(attempts=1, base_delay=0.01),
    )
    try:
        with pytest.raises(NodeUnavailableError):
            pool.call("threshold", {}, (), timeout=15.0, idempotent=True)
        assert pool.connections_created >= 1
        assert pool.open_connections == 0  # the carcass was discarded
    finally:
        pool.close()
        server.close()


def test_concurrent_calls_multiplex_on_one_socket():
    """Many threads share one pipelined connection, answers un-crossed."""
    server = start_node()
    pipe = None
    try:
        pipe = PipelinedConnection(
            "127.0.0.1", server.port, Deadline.after(5)
        )
        results: dict[int, bytes] = {}
        lock = threading.Lock()

        def call(i: int):
            blob = bytes([i]) * (1000 + i)
            result = pipe.call("echo", {}, [blob], Deadline.after(30))
            with lock:
                results[i] = bytes(result.blobs[0])

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(results) == 8
        for i in range(8):
            assert results[i] == bytes([i]) * (1000 + i)
        assert pipe.usable and pipe.in_flight == 0
    finally:
        if pipe is not None:
            pipe.close()
        server.shutdown()


# -- streamed partial results ----------------------------------------------------


def _tcp_mediator(server, **transport_kwargs):
    transport = TcpTransport(
        [f"127.0.0.1:{server.port}"],
        timeout=60.0,
        retry=FAST_RETRY,
        **transport_kwargs,
    )
    return Mediator(
        nodes=[],
        partitioner=MortonPartitioner(SIDE, 1),
        transport=transport,
        scatter_timeout=120.0,
    )


def test_streamed_threshold_is_byte_identical_to_monolithic():
    """A >chunk response ships as >=2 PARTIALs, merged bit-for-bit."""
    query = ThresholdQuery(
        dataset="mhd", field="pressure", timestep=0, threshold=0.0
    )  # matches nearly every point: ~16^3 points, far past the chunk
    streaming = start_node(stream_chunk_points=512)
    monolithic = start_node()  # default chunk (256Ki) => single frame
    try:
        med_stream = _tcp_mediator(streaming)
        med_mono = _tcp_mediator(monolithic)
        try:
            streamed = med_stream.threshold(query, use_cache=False)
            plain = med_mono.threshold(query, use_cache=False)
            assert len(streamed) > 2 * 512  # spans several chunks
            assert np.array_equal(streamed.zindexes, plain.zindexes)
            assert streamed.values.tobytes() == plain.values.tobytes()
            assert streamed.zindexes.tobytes() == plain.zindexes.tobytes()
            partials = med_stream.metrics.to_dict()[
                "rpc_partial_frames_total"
            ]["samples"][0]["value"]
            assert partials >= 2  # 4096 points / 512-point chunks = 8
        finally:
            med_stream.close()
            med_mono.close()
    finally:
        streaming.shutdown()
        monolithic.shutdown()


def test_streamed_batch_matches_monolithic_per_query():
    queries = [
        ThresholdQuery(
            dataset="mhd", field="pressure", timestep=0, threshold=t
        )
        for t in (0.0, 0.5)
    ]
    streaming = start_node(stream_chunk_points=512)
    monolithic = start_node()
    try:
        med_stream = _tcp_mediator(streaming)
        med_mono = _tcp_mediator(monolithic)
        try:
            batch_s = med_stream.batch_threshold(queries, use_cache=False)
            batch_m = med_mono.batch_threshold(queries, use_cache=False)
            for qs, qm in zip(batch_s.results, batch_m.results):
                assert qs.zindexes.tobytes() == qm.zindexes.tobytes()
                assert qs.values.tobytes() == qm.values.tobytes()
        finally:
            med_stream.close()
            med_mono.close()
    finally:
        streaming.shutdown()
        monolithic.shutdown()
