"""One end-to-end scientific workflow exercising every subsystem.

Mirrors how a scientist actually uses the service (paper §3): examine
the value distribution, threshold at an interesting level, cluster the
events, record them as landmarks, register a custom field, and batch
follow-up queries — all against one live cluster, verifying state and
results at every step.
"""

import numpy as np
import pytest

from repro import (
    LandmarkDatabase,
    PdfQuery,
    ThresholdQuery,
    TopKQuery,
    TurbulenceClient,
    build_cluster,
    default_registry,
    friends_of_friends_4d,
    mhd_dataset,
)
from repro.costmodel import Category
from repro.harness.common import ground_truth_norm


@pytest.fixture(scope="module")
def workflow():
    dataset = mhd_dataset(side=32, timesteps=3, seed=42)
    registry = default_registry()
    registry.register_expression("current", "norm(curl(magnetic))")
    mediator = build_cluster(dataset, nodes=4, registry=registry)
    return dataset, mediator


def test_full_scientific_workflow(workflow):
    dataset, mediator = workflow
    client = TurbulenceClient(mediator)
    side = dataset.spec.side

    # 1. Examine the distribution to pick a threshold (paper Fig. 2).
    pdf = client.get_pdf(
        "mhd", "vorticity", 0, tuple(np.linspace(0, 40, 11))
    )
    assert pdf.total_points == side**3
    cumulative = np.cumsum(pdf.counts[::-1])[::-1]
    threshold = float(
        pdf.bin_edges[int(np.argmax(cumulative <= 500))]
    )

    # 2. Threshold every timestep; verify each against ground truth.
    per_step = []
    for timestep in range(dataset.spec.timesteps):
        result = client.get_threshold("mhd", "vorticity", timestep, threshold)
        norm = ground_truth_norm(dataset, "vorticity", timestep)
        assert len(result) == (norm >= threshold).sum()
        per_step.append(result)

    # 3. Cluster events across time (paper Fig. 3).
    stacked_t = np.concatenate(
        [np.full(len(r), t) for t, r in enumerate(per_step) if len(r)]
    )
    stacked_xyz = np.concatenate(
        [r.coordinates() for r in per_step if len(r)]
    )
    stacked_val = np.concatenate([r.values for r in per_step if len(r)])
    clusters = friends_of_friends_4d(
        stacked_t, stacked_xyz, stacked_val, side, linking_length=2, min_size=2
    )
    assert clusters

    # 4. Record landmarks and query them back (paper §7).
    landmarks = LandmarkDatabase(mediator.nodes[0].db)
    for timestep, result in enumerate(per_step):
        landmarks.record_threshold_result(
            ThresholdQuery("mhd", "vorticity", timestep, threshold),
            result, side, min_size=2,
        )
    best = landmarks.most_intense("mhd", "vorticity", k=1)
    if best:
        x, y, z = best[0].peak_location
        norm = ground_truth_norm(dataset, "vorticity", best[0].timestep)
        assert norm[x, y, z] == pytest.approx(best[0].peak_value, abs=1e-5)

    # 5. Re-issuing a query is a cache hit with no raw I/O.
    mediator.drop_page_caches()
    warm = client.get_threshold("mhd", "vorticity", 0, threshold)
    assert warm.cache_hits == len(mediator.nodes)
    assert warm.ledger[Category.IO] == 0.0

    # 6. A higher-threshold follow-up is dominated by the cache too.
    tighter = client.get_threshold("mhd", "vorticity", 0, threshold * 1.3)
    assert tighter.cache_hits == len(mediator.nodes)
    norm0 = ground_truth_norm(dataset, "vorticity", 0)
    assert len(tighter) == (norm0 >= threshold * 1.3).sum()

    # 7. The custom expression field works end-to-end, including top-k.
    current_top = client.get_topk("mhd", "current", 0, k=10)
    current_norm = ground_truth_norm(dataset, "electric_current", 0)
    assert current_top.values[0] == pytest.approx(
        current_norm.max(), abs=1e-4
    )

    # 8. Batch two velocity-derived queries over one shared scan.
    q_norm = ground_truth_norm(dataset, "q_criterion", 0)
    batch = mediator.batch_threshold(
        [
            ThresholdQuery("mhd", "vorticity", 0, threshold),
            ThresholdQuery(
                "mhd", "q_criterion", 0, float(np.quantile(q_norm, 0.999))
            ),
        ]
    )
    assert len(batch.results[0]) == (norm0 >= threshold).sum()

    # 9. The PDF is now cached as well.
    mediator.drop_page_caches()
    pdf_again = client.get_pdf(
        "mhd", "vorticity", 0, tuple(np.linspace(0, 40, 11))
    )
    assert np.array_equal(pdf_again.counts, pdf.counts)
    assert pdf_again.ledger[Category.IO] == 0.0
