"""Concurrency tests: parallel clients against one cluster.

The production service handles many users at once; snapshot isolation on
the cache tables is what keeps concurrent threshold queries from
corrupting or blocking each other (paper §4).  These tests run real
threads against a shared cluster.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.core import ThresholdQuery
from tests.test_core_threshold import ground_truth_norm


@pytest.fixture()
def async_cluster(small_mhd):
    """A cluster with the mediator's asynchronous scatter enabled."""
    return build_cluster(small_mhd, nodes=4, sequential_scatter=False)


class TestConcurrentQueries:
    def test_parallel_identical_queries_agree(self, small_mhd, async_cluster):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        threshold = float(np.quantile(norm, 0.99))
        query = ThresholdQuery("mhd", "vorticity", 0, threshold)
        expected = int((norm >= threshold).sum())

        def run(_):
            return async_cluster.threshold(query)

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(run, range(6)))
        for result in results:
            assert len(result) == expected
        reference = results[0]
        for result in results[1:]:
            assert np.array_equal(result.zindexes, reference.zindexes)

    def test_parallel_distinct_queries(self, small_mhd, async_cluster):
        levels = {
            t: float(
                np.quantile(ground_truth_norm(small_mhd, "vorticity", t), 0.99)
            )
            for t in range(2)
        }
        queries = [
            ThresholdQuery("mhd", "vorticity", t, levels[t] * scale)
            for t in range(2)
            for scale in (1.0, 1.1, 1.2)
        ]

        def run(query):
            return query, async_cluster.threshold(query)

        with ThreadPoolExecutor(max_workers=6) as pool:
            outcomes = list(pool.map(run, queries))
        for query, result in outcomes:
            norm = ground_truth_norm(small_mhd, "vorticity", query.timestep)
            assert len(result) == int((norm >= query.threshold).sum())

    def test_concurrent_mixed_fields_and_caches(self, small_mhd, async_cluster):
        """Readers and refreshers race; every result stays correct."""
        vort = ground_truth_norm(small_mhd, "vorticity", 0)
        magnetic = ground_truth_norm(small_mhd, "magnetic", 0)
        jobs = []
        for _ in range(3):
            jobs.append(
                ThresholdQuery("mhd", "vorticity", 0, float(np.quantile(vort, 0.995)))
            )
            jobs.append(
                ThresholdQuery("mhd", "magnetic", 0, float(np.quantile(magnetic, 0.995)))
            )
            # A lower threshold forces cache refreshes mid-flight.
            jobs.append(
                ThresholdQuery("mhd", "vorticity", 0, float(np.quantile(vort, 0.98)))
            )

        errors = []

        def run(query):
            try:
                result = async_cluster.threshold(query)
                norm = vort if query.field == "vorticity" else magnetic
                assert len(result) == int((norm >= query.threshold).sum())
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=run, args=(q,)) for q in jobs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_ledgers_do_not_cross_contaminate(self, small_mhd, async_cluster):
        """Two concurrent queries each account a plausible, full cost."""
        query0 = ThresholdQuery("mhd", "vorticity", 0, 3.0)
        query1 = ThresholdQuery("mhd", "vorticity", 1, 3.0)
        async_cluster.drop_page_caches()

        with ThreadPoolExecutor(max_workers=2) as pool:
            f0 = pool.submit(
                async_cluster.threshold, query0, 1, False
            )
            f1 = pool.submit(
                async_cluster.threshold, query1, 1, False
            )
            r0, r1 = f0.result(), f1.result()
        from repro.costmodel.ledger import METER_IO_BYTES

        data_bytes = 32**3 * 12  # one timestep of velocity
        for result in (r0, r1):
            # Each query reads at least its interior share.
            assert result.ledger.meter(METER_IO_BYTES) >= 0.9 * data_bytes
