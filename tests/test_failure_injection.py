"""Failure-injection tests: corrupted data, missing atoms, bad requests."""

import numpy as np
import pytest

from repro.cluster import DatabaseNode, build_cluster
from repro.core import ThresholdQuery
from repro.costmodel import paper_cluster
from repro.simulation import mhd_dataset
from repro.storage.errors import StorageError


class TestMissingData:
    def test_missing_atom_fails_loudly(self, small_mhd):
        """A hole in the atom table surfaces as an error, not bad data."""
        mediator = build_cluster(small_mhd, nodes=2)
        node = mediator.nodes[0]
        with node.db.transaction() as txn:
            assert node.db.table("atoms_mhd_velocity").delete(txn, (0, 0))
        with pytest.raises(ValueError, match="uncovered"):
            mediator.threshold(
                ThresholdQuery("mhd", "vorticity", 0, 1e9), use_cache=False
            )

    def test_other_timesteps_unaffected(self, small_mhd):
        mediator = build_cluster(small_mhd, nodes=2)
        node = mediator.nodes[0]
        with node.db.transaction() as txn:
            node.db.table("atoms_mhd_velocity").delete(txn, (0, 0))
        result = mediator.threshold(
            ThresholdQuery("mhd", "vorticity", 1, 1e9), use_cache=False
        )
        assert len(result) == 0  # evaluates fine on the intact timestep

    def test_unloaded_timestep_fails(self, small_mhd):
        mediator = build_cluster(small_mhd, nodes=2, load=False)
        mediator.load_dataset(small_mhd, timesteps=[0])
        with pytest.raises(ValueError):
            mediator.threshold(
                ThresholdQuery("mhd", "vorticity", 1, 1e9), use_cache=False
            )

    def test_unknown_dataset_fails(self, mhd_cluster):
        with pytest.raises(KeyError):
            mhd_cluster.threshold(
                ThresholdQuery("isotropic", "vorticity", 0, 1.0)
            )


class TestCorruptData:
    def test_truncated_blob_detected(self, small_mhd):
        mediator = build_cluster(small_mhd, nodes=2)
        node = mediator.nodes[0]
        table = node.db.table("atoms_mhd_velocity")
        with node.db.transaction() as txn:
            table.delete(txn, (0, 0))
            table.insert(
                txn, {"timestep": 0, "zindex": 0, "blob": b"\x00" * 100}
            )
        with pytest.raises(ValueError, match="blob"):
            mediator.threshold(
                ThresholdQuery("mhd", "vorticity", 0, 1e9), use_cache=False
            )

    def test_failed_query_leaves_cache_consistent(self, small_mhd):
        """A mid-evaluation failure aborts the node transaction."""
        mediator = build_cluster(small_mhd, nodes=2)
        node = mediator.nodes[0]
        with node.db.transaction() as txn:
            node.db.table("atoms_mhd_velocity").delete(txn, (0, 0))
        with pytest.raises(ValueError):
            mediator.threshold(ThresholdQuery("mhd", "vorticity", 0, 1e9))
        # No half-written cache entries remain anywhere.
        for cache, cluster_node in zip(mediator.caches, mediator.nodes):
            with cluster_node.db.transaction() as txn:
                assert cache.entry_count(txn) == 0


class TestNodeMisuse:
    def test_store_atom_requires_registered_dataset(self):
        node = DatabaseNode(0, paper_cluster())
        from repro.storage.errors import TableNotFoundError

        with node.db.transaction() as txn:
            with pytest.raises(TableNotFoundError):
                node.store_atom(txn, "nope", "velocity", 0, 0, b"")
            txn.abort()

    def test_duplicate_atom_rejected(self, small_mhd):
        node = DatabaseNode(0, paper_cluster())
        node.register_dataset(small_mhd.spec)
        blob = b"\x00" * (8**3 * 3 * 4)
        from repro.storage import DuplicateKeyError

        with node.db.transaction() as txn:
            node.store_atom(txn, "mhd", "velocity", 0, 0, blob)
            with pytest.raises(DuplicateKeyError):
                node.store_atom(txn, "mhd", "velocity", 0, 0, blob)
            txn.abort()
