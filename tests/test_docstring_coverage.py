"""Documentation meta-test: every public item carries a docstring.

The deliverable promises "doc comments on every public item"; this test
enforces it mechanically across the whole package — modules, public
classes, public functions and public methods.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"module {module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_have_docstrings(module):
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not inspect.getdoc(item):
            undocumented.append(name)
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not inspect.getdoc(method):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )
