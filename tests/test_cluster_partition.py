"""Tests for the Morton partitioner."""

import pytest

from repro.cluster import MortonPartitioner
from repro.grid import Box
from repro.grid.atoms import atom_code
from repro.morton import encode


class TestConstruction:
    def test_supported_node_counts(self):
        for nodes in (1, 2, 4, 8):
            MortonPartitioner(32, nodes)

    def test_unsupported_node_count(self):
        with pytest.raises(ValueError):
            MortonPartitioner(32, 3)

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            MortonPartitioner(24, 4)
        with pytest.raises(ValueError):
            MortonPartitioner(4, 1)  # not an atom multiple


class TestRanges:
    def test_ranges_partition_curve(self):
        part = MortonPartitioner(32, 4)
        total = 0
        for node_id in range(4):
            total += len(part.node_ranges(node_id))
        assert total == 32**3

    def test_node_of_code_consistent_with_ranges(self):
        part = MortonPartitioner(16, 8)
        for node_id in range(8):
            rng = part.node_ranges(node_id)
            assert part.node_of_code(rng.start) == node_id
            assert part.node_of_code(rng.stop - 1) == node_id

    def test_out_of_domain_code_rejected(self):
        part = MortonPartitioner(16, 2)
        with pytest.raises(ValueError):
            part.node_of_code(16**3)

    def test_atoms_of_node(self):
        part = MortonPartitioner(32, 4)
        assert part.atoms_of_node(0) == (32 // 8) ** 3 // 4


class TestBoxes:
    def test_single_node_owns_domain(self):
        part = MortonPartitioner(16, 1)
        assert part.node_boxes(0) == [Box.cube(16)]

    def test_eight_nodes_own_octants(self):
        part = MortonPartitioner(16, 8)
        for node_id in range(8):
            boxes = part.node_boxes(node_id)
            assert len(boxes) == 1
            assert boxes[0].shape == (8, 8, 8)

    def test_boxes_tile_domain(self):
        part = MortonPartitioner(16, 4)
        total = sum(
            box.volume for node in range(4) for box in part.node_boxes(node)
        )
        assert total == 16**3

    def test_boxes_agree_with_code_ownership(self):
        part = MortonPartitioner(16, 2)
        for node_id in range(2):
            for box in part.node_boxes(node_id):
                corner_code = encode(*box.lo)
                assert part.node_of_code(corner_code) == node_id

    def test_node_of_point_via_atom(self):
        part = MortonPartitioner(16, 8)
        # Point (9, 1, 1) belongs to the atom at (8, 0, 0): octant 1.
        assert part.node_of_point(9, 1, 1) == part.node_of_code(atom_code(9, 1, 1))

    def test_invalid_node_id(self):
        part = MortonPartitioner(16, 2)
        with pytest.raises(ValueError):
            part.node_boxes(2)


class TestQueryBoxes:
    def test_full_domain_query_covers_all_nodes(self):
        part = MortonPartitioner(16, 4)
        query = Box.cube(16)
        for node_id in range(4):
            pieces = part.query_boxes(node_id, query)
            assert pieces == part.node_boxes(node_id)

    def test_small_query_touches_one_node(self):
        part = MortonPartitioner(16, 8)
        query = Box((0, 0, 0), (4, 4, 4))
        touched = [n for n in range(8) if part.query_boxes(n, query)]
        assert touched == [0]

    def test_query_pieces_tile_query(self):
        part = MortonPartitioner(16, 8)
        query = Box((2, 3, 4), (13, 14, 15))
        pieces = [
            piece for n in range(8) for piece in part.query_boxes(n, query)
        ]
        assert sum(p.volume for p in pieces) == query.volume
