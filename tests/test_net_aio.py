"""Integration tests for the asyncio front door (:mod:`repro.net.aio`).

The contract under test: the async door answers the same dictionary
protocol byte-identically to the threaded door and the in-process path,
keeps connections alive across requests, and under overload every
client gets either a correct answer or a well-formed typed shed — no
hangs, no resets, no partial JSON.
"""

import http.client
import json
import socket
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cluster import build_cluster
from repro.cluster.admission import AdmissionController
from repro.cluster.webservice import WebService
from repro.net.aio import AsyncHttpFrontend
from repro.net.http import MAX_BODY_BYTES, HttpFrontend, _Handler

#: Fields that legitimately differ between two executions of the same
#: request (fresh query ids, wall-clock timings, cache warmth).
VOLATILE = {"query_id", "elapsed_seconds", "cache_hits"}

THRESHOLD_QUERY = {
    "method": "GetThreshold",
    "dataset": "mhd",
    "field": "vorticity",
    "timestep": 0,
    "threshold": 15.0,
}

SHED_CODES = {"quota_exceeded", "queue_full", "queue_timeout", "overloaded"}


@pytest.fixture(scope="module")
def service(small_mhd):
    """One WebService over a private 4-node cluster for this module."""
    return WebService(build_cluster(small_mhd, nodes=4))


def open_async_door(service, **admission_kwargs) -> AsyncHttpFrontend:
    admission = (
        AdmissionController(service.metrics, **admission_kwargs)
        if admission_kwargs
        else None
    )
    door = AsyncHttpFrontend(service, admission=admission)
    door.start()
    return door


def post(conn: http.client.HTTPConnection, payload: dict, tenant=None):
    """One ``POST /`` exchange; returns ``(status, body bytes, headers)``."""
    headers = {"Content-Type": "application/json"}
    if tenant is not None:
        headers["X-Tenant"] = tenant
    conn.request("POST", "/", body=json.dumps(payload), headers=headers)
    response = conn.getresponse()
    return response.status, response.read(), dict(response.getheaders())


def normalize(body: dict) -> dict:
    return {k: v for k, v in body.items() if k not in VOLATILE}


class TestEquivalence:
    REQUESTS = [
        THRESHOLD_QUERY,
        {"method": "GetPdf", "dataset": "mhd", "field": "vorticity",
         "timestep": 0, "bins": 16},
        {"method": "GetTopK", "dataset": "mhd", "field": "vorticity",
         "timestep": 0, "k": 5},
        {"method": "ListFields"},
        {"method": "ListDatasets"},
        {"method": "NoSuchMethod"},
        {"method": "GetThreshold", "dataset": "mhd"},  # missing keys
    ]

    def test_async_threaded_and_direct_paths_agree(self, service):
        with HttpFrontend(service) as threaded, open_async_door(service) as door:
            threaded.start()
            t_conn = http.client.HTTPConnection(
                "127.0.0.1", threaded.port, timeout=30
            )
            a_conn = http.client.HTTPConnection(
                "127.0.0.1", door.port, timeout=30
            )
            for request in self.REQUESTS:
                direct = service.handle(dict(request))
                t_status, t_body, _ = post(t_conn, request)
                a_status, a_body, _ = post(a_conn, request)
                assert a_status == t_status, request
                assert normalize(json.loads(a_body)) == normalize(
                    json.loads(t_body)
                ), request
                assert normalize(json.loads(a_body)) == normalize(
                    direct
                ), request
                if direct.get("status") != "ok":
                    # Error bodies carry no volatile fields, so the two
                    # doors must agree to the byte.
                    assert a_body == t_body, request
            t_conn.close()
            a_conn.close()

    def test_get_stats_bypasses_the_queue(self, service):
        with open_async_door(service) as door:
            conn = http.client.HTTPConnection(
                "127.0.0.1", door.port, timeout=30
            )
            conn.request("GET", "/stats")
            response = conn.getresponse()
            text = response.read().decode("utf-8")
            assert response.status == 200
            assert "aio_connections_open" in text
            conn.close()

    def test_method_not_allowed(self, service):
        with open_async_door(service) as door:
            conn = http.client.HTTPConnection(
                "127.0.0.1", door.port, timeout=30
            )
            conn.request("PUT", "/", body="{}")
            response = conn.getresponse()
            assert response.status == 405
            assert json.loads(response.read())["code"] == "bad_request"
            conn.close()


class TestKeepAlive:
    def test_connection_is_reused_across_requests(self, service):
        with open_async_door(service) as door:
            conn = http.client.HTTPConnection(
                "127.0.0.1", door.port, timeout=30
            )
            first_socket = None
            for _ in range(5):
                status, body, headers = post(conn, {"method": "ListFields"})
                assert status == 200
                assert json.loads(body)["status"] == "ok"
                assert headers.get("Connection") == "keep-alive"
                if first_socket is None:
                    first_socket = conn.sock
                assert conn.sock is first_socket
            conn.close()


class TestOverload:
    def test_flood_past_admission_limit(self, service):
        """Every flooded client gets a correct answer or a typed shed."""
        expected = normalize(service.handle(dict(THRESHOLD_QUERY)))
        door = open_async_door(
            service,
            tenant_rate=50.0,
            tenant_burst=8.0,
            max_queue_depth=4,
            max_queue_wait=1.0,
            workers=2,
        )

        def one_client(_: int):
            conn = http.client.HTTPConnection(
                "127.0.0.1", door.port, timeout=30
            )
            try:
                status, body, headers = post(conn, THRESHOLD_QUERY)
            finally:
                conn.close()
            parsed = json.loads(body)  # complete JSON or the test fails
            return status, parsed, headers

        with door:
            with ThreadPoolExecutor(max_workers=40) as pool:
                outcomes = list(pool.map(one_client, range(40)))

        admitted = [o for o in outcomes if o[0] == 200]
        shed = [o for o in outcomes if o[0] in (429, 503)]
        assert len(admitted) + len(shed) == len(outcomes)
        assert admitted, "the first arrivals must be admitted"
        assert shed, "40 clients against burst=8 must shed"
        for _, parsed, _ in admitted:
            assert normalize(parsed) == expected
        for status, parsed, headers in shed:
            assert parsed["status"] == "error"
            assert parsed["code"] in SHED_CODES
            assert parsed["retry_after_s"] > 0.0
            assert "Retry-After" in headers
            if parsed["code"] == "quota_exceeded":
                assert status == 429
            else:
                assert status == 503

    def test_tenant_header_scopes_the_quota(self, service):
        with open_async_door(
            service, tenant_rate=5.0, tenant_burst=1.0
        ) as door:
            conn = http.client.HTTPConnection(
                "127.0.0.1", door.port, timeout=30
            )
            status, _, _ = post(conn, {"method": "ListFields"}, tenant="a")
            assert status == 200
            status, body, _ = post(conn, {"method": "ListFields"}, tenant="a")
            assert status == 429
            assert json.loads(body)["code"] == "quota_exceeded"
            status, _, _ = post(conn, {"method": "ListFields"}, tenant="b")
            assert status == 200
            conn.close()


class TestProtocolAbuse:
    def recv_all(self, sock: socket.socket) -> bytes:
        chunks = []
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)

    def test_malformed_request_line_gets_400_and_close(self, service):
        with open_async_door(service) as door:
            with socket.create_connection(
                ("127.0.0.1", door.port), timeout=15
            ) as sock:
                sock.sendall(b"NONSENSE\r\n\r\n")
                raw = self.recv_all(sock)
        assert raw.startswith(b"HTTP/1.1 400 ")
        assert b'"code": "bad_request"' in raw

    def test_oversized_body_gets_400_and_close(self, service):
        with open_async_door(service) as door:
            with socket.create_connection(
                ("127.0.0.1", door.port), timeout=15
            ) as sock:
                sock.sendall(
                    b"POST / HTTP/1.1\r\n"
                    b"Content-Length: %d\r\n\r\n" % (MAX_BODY_BYTES + 1)
                )
                raw = self.recv_all(sock)
        assert raw.startswith(b"HTTP/1.1 400 ")
        assert b"oversized" in raw

    def test_mid_body_disconnect_is_counted_not_crashed(self, service):
        counter = service.metrics.get("http_client_disconnects")
        before = counter.labels(door="async").value
        with open_async_door(service) as door:
            sock = socket.create_connection(
                ("127.0.0.1", door.port), timeout=15
            )
            sock.sendall(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"meth"
            )
            sock.close()
            for _ in range(100):
                if counter.labels(door="async").value > before:
                    break
                time.sleep(0.05)
            assert counter.labels(door="async").value > before


class TestThreadedDoorHardening:
    def test_reply_swallows_broken_pipe_and_counts_it(self, service):
        counter = service.metrics.get("http_client_disconnects")
        before = counter.labels(door="threaded").value

        class DeadPipe:
            def write(self, data):
                raise BrokenPipeError("peer vanished")

            def flush(self):
                raise BrokenPipeError("peer vanished")

        handler = _Handler.__new__(_Handler)
        handler.service = service
        handler.wfile = DeadPipe()
        handler.requestline = "POST / HTTP/1.1"
        handler.request_version = "HTTP/1.1"
        handler.close_connection = False
        handler._reply(200, "application/json", b"{}")
        assert handler.close_connection is True
        assert counter.labels(door="threaded").value == before + 1
