"""Tests for Morton range covering and curve splitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.morton import MortonRange, box_to_ranges, decode, encode, split_curve


class TestMortonRange:
    def test_length_and_membership(self):
        rng = MortonRange(4, 10)
        assert len(rng) == 6
        assert 4 in rng and 9 in rng
        assert 10 not in rng and 3 not in rng

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            MortonRange(5, 4)
        with pytest.raises(ValueError):
            MortonRange(-1, 4)

    def test_overlap_and_intersection(self):
        a, b = MortonRange(0, 10), MortonRange(5, 20)
        assert a.overlaps(b) and b.overlaps(a)
        assert a.intersection(b) == MortonRange(5, 10)
        assert a.intersection(MortonRange(10, 12)) is None


class TestBoxToRanges:
    def test_full_domain_is_single_range(self):
        ranges = box_to_ranges((0, 0, 0), (8, 8, 8), 8)
        assert ranges == [MortonRange(0, 512)]

    def test_single_cell(self):
        ranges = box_to_ranges((3, 5, 1), (4, 6, 2), 8)
        assert ranges == [MortonRange(encode(3, 5, 1), encode(3, 5, 1) + 1)]

    def test_empty_box(self):
        assert box_to_ranges((2, 2, 2), (2, 5, 5), 8) == []

    def test_octant_is_contiguous(self):
        # The upper-corner octant of a side-8 domain is one range.
        ranges = box_to_ranges((4, 4, 4), (8, 8, 8), 8)
        assert len(ranges) == 1
        assert len(ranges[0]) == 64

    def test_rejects_non_power_of_two_domain(self):
        with pytest.raises(ValueError):
            box_to_ranges((0, 0, 0), (3, 3, 3), 12)

    def test_rejects_box_outside_domain(self):
        with pytest.raises(ValueError):
            box_to_ranges((0, 0, 0), (9, 8, 8), 8)
        with pytest.raises(ValueError):
            box_to_ranges((-1, 0, 0), (4, 4, 4), 8)

    def test_ranges_are_sorted_disjoint_nonadjacent(self):
        ranges = box_to_ranges((1, 2, 3), (7, 6, 8), 8)
        for a, b in zip(ranges, ranges[1:]):
            assert a.stop < b.start  # merged, so a gap must separate them

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 16), min_size=6, max_size=6))
    def test_cover_is_exact(self, corners):
        lo = tuple(min(corners[i], corners[i + 3]) for i in range(3))
        hi = tuple(max(corners[i], corners[i + 3]) for i in range(3))
        ranges = box_to_ranges(lo, hi, 16)
        covered = set()
        for rng in ranges:
            covered.update(range(rng.start, rng.stop))
        expected = {
            encode(x, y, z)
            for x in range(lo[0], hi[0])
            for y in range(lo[1], hi[1])
            for z in range(lo[2], hi[2])
        }
        assert covered == expected

    def test_plane_decomposes_into_expected_count(self):
        # A 1-thick z-plane in a side-4 domain touches every z-column once.
        ranges = box_to_ranges((0, 0, 0), (4, 4, 1), 4)
        total = sum(len(r) for r in ranges)
        assert total == 16


class TestSplitCurve:
    def test_partitions_whole_curve(self):
        parts = split_curve(8, 4)
        assert parts[0].start == 0
        assert parts[-1].stop == 512
        for a, b in zip(parts, parts[1:]):
            assert a.stop == b.start

    def test_near_equal_sizes(self):
        parts = split_curve(8, 3)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 512

    def test_single_part(self):
        assert split_curve(4, 1) == [MortonRange(0, 64)]

    def test_more_parts_than_codes_drops_empties(self):
        parts = split_curve(1, 5)
        assert parts == [MortonRange(0, 1)]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            split_curve(8, 0)
        with pytest.raises(ValueError):
            split_curve(10, 2)

    def test_power_of_two_split_aligns_to_octants(self):
        parts = split_curve(8, 8)
        assert all(len(p) == 64 for p in parts)
        # Each part is then exactly one spatial octant.
        for part in parts:
            corner = decode(part.start)
            assert all(c % 4 == 0 for c in corner)
