"""Tests for the client facade and the local-evaluation baseline."""

import numpy as np
import pytest

from repro.client import TurbulenceClient, local_threshold_evaluation
from repro.core import ThresholdQuery
from repro.costmodel import Category
from repro.grid import Box
from tests.test_core_threshold import ground_truth_norm


@pytest.fixture()
def client(mhd_cluster):
    return TurbulenceClient(mhd_cluster)


class TestClientFacade:
    def test_get_threshold(self, small_mhd, client):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        threshold = float(np.quantile(norm, 0.995))
        result = client.get_threshold("mhd", "vorticity", 0, threshold)
        assert len(result) == (norm >= threshold).sum()

    def test_get_pdf(self, client):
        result = client.get_pdf("mhd", "vorticity", 0, (0.0, 2.0, 4.0))
        assert result.total_points == 32**3

    def test_get_topk(self, small_mhd, client):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        result = client.get_topk("mhd", "vorticity", 0, k=5)
        assert len(result) == 5
        assert result.values[0] == pytest.approx(norm.max(), abs=1e-5)

    def test_get_field_returns_norm_over_box(self, small_mhd, client):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        box = Box((0, 0, 0), (16, 16, 16))
        array, seconds = client.get_field("mhd", "vorticity", 0, box)
        assert array.shape == (16, 16, 16)
        assert np.allclose(array, norm[:16, :16, :16], atol=1e-5)
        assert seconds > 0

    def test_get_velocity_gradient(self, small_mhd, client):
        box = Box((0, 0, 0), (16, 16, 16))
        tensor, seconds = client.get_velocity_gradient("mhd", 0, box)
        assert tensor.shape == (16, 16, 16, 3, 3)
        from repro.fields import gradient_tensor_periodic

        velocity = small_mhd.field_array("velocity", 0).astype(np.float64)
        expected = gradient_tensor_periodic(
            velocity, small_mhd.spec.spacing, 4
        )
        assert np.allclose(tensor, expected[:16, :16, :16], atol=1e-4)


class TestSuggestThreshold:
    def test_suggested_threshold_hits_target_scale(self, small_mhd, client):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        for target in (50, 500):
            threshold = client.suggest_threshold(
                "mhd", "vorticity", 0, target_points=target
            )
            kept = int((norm >= threshold).sum())
            assert kept <= target
            # Not absurdly over-tight either: within ~one fine bin.
            looser = int((norm >= threshold * 0.9).sum())
            assert looser >= target * 0.2

    def test_target_larger_than_grid_returns_zero(self, client):
        assert client.suggest_threshold("mhd", "vorticity", 0, 10**9) == 0.0

    def test_invalid_target(self, client):
        with pytest.raises(ValueError):
            client.suggest_threshold("mhd", "vorticity", 0, 0)

    def test_suggestion_makes_query_admissible(self, client, mhd_cluster):
        threshold = client.suggest_threshold(
            "mhd", "vorticity", 0, target_points=200
        )
        result = mhd_cluster.threshold(
            ThresholdQuery("mhd", "vorticity", 0, threshold),
            max_points=200,
        )
        assert len(result) <= 200


class TestLocalBaseline:
    def test_matches_integrated_result(self, small_mhd, mhd_cluster):
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        threshold = float(np.quantile(norm, 0.99))
        integrated = mhd_cluster.threshold(
            ThresholdQuery("mhd", "vorticity", 0, threshold), use_cache=False
        )
        local = local_threshold_evaluation(
            mhd_cluster, "mhd", 0, threshold, chunk_side=16
        )
        assert np.array_equal(local.zindexes, integrated.zindexes)
        assert np.allclose(local.values, integrated.values, atol=1e-6)

    def test_subquery_count(self, mhd_cluster):
        local = local_threshold_evaluation(
            mhd_cluster, "mhd", 0, 1e9, chunk_side=16
        )
        assert local.subqueries == (32 // 16) ** 3
        assert len(local) == 0

    def test_bytes_downloaded_counts_gradient(self, mhd_cluster):
        local = local_threshold_evaluation(
            mhd_cluster, "mhd", 0, 1e9, chunk_side=32
        )
        assert local.bytes_downloaded == 32**3 * 9 * 4

    def test_wan_dominates_local_cost(self, mhd_cluster):
        local = local_threshold_evaluation(
            mhd_cluster, "mhd", 0, 1e9, chunk_side=16
        )
        assert local.ledger[Category.MEDIATOR_USER] > 0.5 * local.elapsed

    def test_invalid_chunk_side(self, mhd_cluster):
        with pytest.raises(ValueError):
            local_threshold_evaluation(mhd_cluster, "mhd", 0, 1.0, chunk_side=12)
