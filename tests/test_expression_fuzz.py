"""Fuzzing the expression compiler: no input may crash it.

Hypothesis generates both random grammar-shaped expressions (which must
compile and evaluate to finite scalars) and arbitrary junk (which must
raise :class:`ExpressionError`, never anything else).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields.expressions import ExpressionError, compile_expression


def scalar_exprs():
    """Recursively generated well-typed scalar expressions."""
    vector = st.recursive(
        st.sampled_from(["velocity", "magnetic"]).map(lambda f: (f, f)),
        lambda children: children.flatmap(
            lambda child: st.just((f"curl({child[0]})", child[1]))
        ),
        max_leaves=3,
    )
    scalar_of_vector = vector.flatmap(
        lambda v: st.sampled_from(
            [f"norm({v[0]})", f"abs(q({v[0]}))", f"abs(r({v[0]}))",
             f"abs(div({v[0]}))"]
        ).map(lambda s: (s, v[1]))
    )
    base = st.one_of(
        scalar_of_vector,
        st.just(("abs(pressure)", "pressure")),
        st.just(("norm(grad(pressure))", "pressure")),
    )

    def combine(children):
        return st.tuples(children, children, st.sampled_from("+-*")).flatmap(
            lambda pair: (
                st.just((f"({pair[0][0]}) {pair[2]} ({pair[1][0]})", pair[0][1]))
                if pair[0][1] == pair[1][1]
                else st.just(pair[0])
            )
        )

    return st.recursive(base, combine, max_leaves=3)


@settings(max_examples=60, deadline=None)
@given(expr=scalar_exprs(), scale=st.floats(0.25, 4.0))
def test_generated_expressions_compile_and_evaluate(expr, scale):
    text, source = expr
    text = f"({text}) * {scale:.3f}"
    compiled = compile_expression(text)
    assert compiled.source == source
    derived = compiled.as_derived_field("fuzz")
    rng = np.random.default_rng(0)
    ncomp = compiled.source_components
    field = rng.normal(size=(12, 12, 12, ncomp))
    margin = derived.halo(4)
    block = (
        np.pad(field, [(margin,) * 2] * 3 + [(0, 0)], mode="wrap")
        if margin
        else field
    )
    norm = derived.norm(block, 0.5, 4)
    assert norm.shape == (12, 12, 12)
    assert np.isfinite(norm).all()
    assert (norm >= 0).all()


@settings(max_examples=150, deadline=None)
@given(
    text=st.text(
        alphabet="abcdefgnorm curlqdiv()+-*.0123456789_,",
        max_size=40,
    )
)
def test_junk_never_crashes(text):
    """Arbitrary text either compiles or raises ExpressionError."""
    try:
        compile_expression(text)
    except ExpressionError:
        pass


@settings(max_examples=60, deadline=None)
@given(depth=st.integers(1, 4))
def test_nested_curl_halo_scales_with_depth(depth):
    text = "velocity"
    for _ in range(depth):
        text = f"curl({text})"
    compiled = compile_expression(f"norm({text})")
    assert compiled.depth == depth
    derived = compiled.as_derived_field(f"curl{depth}")
    assert derived.halo(4) == 2 * depth
