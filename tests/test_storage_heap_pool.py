"""Tests for heap files and the buffer pool's device charging."""

import pytest

from repro.costmodel import Category, CostLedger
from repro.costmodel.devices import HddArraySpec, SsdSpec
from repro.costmodel.ledger import METER_CACHE_BYTES, METER_IO_BYTES, METER_IO_SEEKS
from repro.storage.bufferpool import BufferPool
from repro.storage.database import StorageDevice
from repro.storage.errors import StorageError
from repro.storage.heap import PAGE_SIZE, HeapFile, RowId


class TestHeapFile:
    def test_append_and_get(self):
        heap = HeapFile()
        rid = heap.append(b"hello")
        assert heap.get(rid) == b"hello"
        assert heap.record_count == 1

    def test_small_records_share_a_page(self):
        heap = HeapFile()
        rids = [heap.append(b"x" * 100) for _ in range(10)]
        assert {r.page for r in rids} == {0}

    def test_large_records_get_own_pages(self):
        heap = HeapFile()
        blob = b"x" * 6144  # one 8^3 x 3 x float32 atom
        first, second = heap.append(blob), heap.append(blob)
        assert first.page != second.page

    def test_page_overflow_allocates(self):
        heap = HeapFile()
        for _ in range(3):
            heap.append(b"y" * (PAGE_SIZE // 2))
        assert heap.page_count >= 2

    def test_delete_frees_slot(self):
        heap = HeapFile()
        rid = heap.append(b"gone")
        heap.delete(rid)
        assert heap.record_count == 0
        with pytest.raises(StorageError):
            heap.get(rid)
        with pytest.raises(StorageError):
            heap.delete(rid)

    def test_invalid_rowid(self):
        heap = HeapFile()
        with pytest.raises(StorageError):
            heap.get(RowId(5, 0))
        heap.append(b"a")
        with pytest.raises(StorageError):
            heap.get(RowId(0, 7))


def make_device(category=Category.IO):
    spec = HddArraySpec() if category is Category.IO else SsdSpec()
    return StorageDevice("dev", spec, category)


class TestBufferPool:
    def test_miss_charges_read(self):
        pool = BufferPool(capacity_pages=8)
        device = make_device()
        ledger = CostLedger()
        device.bind_ledger(ledger)
        pool.access(device, 0, 0)
        assert ledger[Category.IO] > 0
        assert ledger.meter(METER_IO_BYTES) == PAGE_SIZE
        assert ledger.meter(METER_IO_SEEKS) == 1

    def test_hit_is_free(self):
        pool = BufferPool(capacity_pages=8)
        device = make_device()
        ledger = CostLedger()
        device.bind_ledger(ledger)
        pool.access(device, 0, 0)
        before = ledger[Category.IO]
        pool.access(device, 0, 0)
        assert ledger[Category.IO] == before
        assert pool.hits == 1 and pool.misses == 1

    def test_sequential_access_skips_seek(self):
        device = make_device()
        ledger = CostLedger()
        device.bind_ledger(ledger)
        pool = BufferPool(8)
        pool.access(device, 0, 0, sequential=True)
        assert ledger.meter(METER_IO_SEEKS) == 0

    def test_eviction_respects_capacity(self):
        pool = BufferPool(capacity_pages=2)
        device = make_device()
        device.bind_ledger(CostLedger())
        for page in range(5):
            pool.access(device, 0, page)
        assert len(pool) == 2

    def test_lru_eviction_order(self):
        pool = BufferPool(capacity_pages=2)
        device = make_device()
        ledger = CostLedger()
        device.bind_ledger(ledger)
        pool.access(device, 0, 0)
        pool.access(device, 0, 1)
        pool.access(device, 0, 0)  # refresh page 0
        pool.access(device, 0, 2)  # evicts page 1
        misses_before = pool.misses
        pool.access(device, 0, 0)  # still resident
        assert pool.misses == misses_before

    def test_dirty_eviction_charges_write(self):
        pool = BufferPool(capacity_pages=1)
        device = make_device(Category.CACHE_LOOKUP)
        ledger = CostLedger()
        device.bind_ledger(ledger)
        pool.access(device, 0, 0, dirty=True)
        after_write = ledger[Category.CACHE_LOOKUP]
        pool.access(device, 0, 1)  # evicts dirty page 0 -> write-back
        assert ledger[Category.CACHE_LOOKUP] > after_write
        assert ledger.meter(METER_CACHE_BYTES) == 3 * PAGE_SIZE

    def test_flush_writes_dirty_once(self):
        pool = BufferPool(8)
        device = make_device()
        ledger = CostLedger()
        device.bind_ledger(ledger)
        pool.access(device, 0, 0, dirty=True)
        pool.flush(device)
        after = ledger.meter(METER_IO_BYTES)
        pool.flush(device)  # now clean: no further charge
        assert ledger.meter(METER_IO_BYTES) == after

    def test_clear_drops_without_charging(self):
        pool = BufferPool(8)
        device = make_device()
        ledger = CostLedger()
        device.bind_ledger(ledger)
        pool.access(device, 0, 0)
        before = ledger.total
        pool.clear()
        assert len(pool) == 0
        assert ledger.total == before

    def test_unbound_ledger_charges_nothing(self):
        pool = BufferPool(8)
        device = make_device()
        pool.access(device, 0, 0)  # must not raise

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(0)
