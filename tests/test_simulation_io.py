"""Tests for dataset persistence."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.core import ThresholdQuery
from repro.simulation import mhd_dataset
from repro.simulation.io import load_dataset, save_dataset


@pytest.fixture()
def saved(tmp_path, small_mhd):
    return save_dataset(small_mhd, tmp_path / "mhd32")


class TestRoundTrip:
    def test_spec_preserved(self, saved, small_mhd):
        stored = load_dataset(saved)
        assert stored.spec == small_mhd.spec

    def test_arrays_identical(self, saved, small_mhd):
        stored = load_dataset(saved)
        for field in small_mhd.spec.fields:
            for timestep in range(small_mhd.spec.timesteps):
                assert np.array_equal(
                    stored.field_array(field, timestep),
                    small_mhd.field_array(field, timestep),
                )

    def test_validation(self, saved):
        stored = load_dataset(saved)
        with pytest.raises(KeyError):
            stored.field_array("nope", 0)
        with pytest.raises(ValueError):
            stored.field_array("velocity", 99)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "empty")

    def test_corrupt_shape_detected(self, saved):
        stored = load_dataset(saved)
        np.save(saved / "velocity_0.npy", np.zeros((2, 2)))
        with pytest.raises(ValueError, match="shape"):
            stored.field_array("velocity", 0)


class TestClusterIntegration:
    def test_stored_dataset_feeds_a_cluster(self, saved, small_mhd):
        stored = load_dataset(saved)
        mediator = build_cluster(stored, nodes=2)
        reference = build_cluster(small_mhd, nodes=2)
        query = ThresholdQuery("mhd", "vorticity", 0, 3.0)
        a = mediator.threshold(query, use_cache=False)
        b = reference.threshold(query, use_cache=False)
        assert np.array_equal(a.zindexes, b.zindexes)
