"""Tests for spectral synthesis, dataset generators and atomization."""

import numpy as np
import pytest

from repro.grid import ATOM_SIDE, Box
from repro.morton import encode
from repro.simulation import (
    DatasetSpec,
    array_from_atoms,
    atomize,
    blob_to_array,
    channel_dataset,
    isotropic_dataset,
    mhd_dataset,
    solenoidal_field,
    von_karman_spectrum,
)


class TestSpectral:
    def test_shape_and_dtype(self):
        field = solenoidal_field(16, seed=1)
        assert field.shape == (16, 16, 16, 3)
        assert field.dtype == np.float32

    def test_deterministic(self):
        a = solenoidal_field(16, seed=5)
        b = solenoidal_field(16, seed=5)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = solenoidal_field(16, seed=1)
        b = solenoidal_field(16, seed=2)
        assert not np.array_equal(a, b)

    def test_rms_normalisation(self):
        field = solenoidal_field(32, seed=3, rms=2.0)
        rms = np.sqrt(np.mean(np.sum(field.astype(np.float64) ** 2, axis=-1)))
        assert rms == pytest.approx(2.0, rel=1e-5)

    def test_zero_mean(self):
        field = solenoidal_field(32, seed=4)
        assert np.abs(field.mean(axis=(0, 1, 2))).max() < 1e-5

    def test_spectrally_solenoidal(self):
        """Divergence in spectral space (exact for the synthesis) is ~0."""
        field = solenoidal_field(16, seed=6, dtype=np.float64)
        spectral = [np.fft.rfftn(field[..., c]) for c in range(3)]
        k1 = np.fft.fftfreq(16, d=1 / 16)
        kz = np.fft.rfftfreq(16, d=1 / 16)
        kx, ky, kzz = np.meshgrid(k1, k1, kz, indexing="ij")
        div = kx * spectral[0] + ky * spectral[1] + kzz * spectral[2]
        scale = max(np.abs(s).max() for s in spectral)
        assert np.abs(div).max() / scale < 1e-10

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            solenoidal_field(15)
        with pytest.raises(ValueError):
            solenoidal_field(0)

    def test_spectrum_validation(self):
        with pytest.raises(ValueError):
            von_karman_spectrum(0)

    def test_long_tailed_norm_distribution(self):
        """Max |field| well above RMS: thresholds can target rare events."""
        field = solenoidal_field(64, seed=7)
        norms = np.linalg.norm(field.astype(np.float64), axis=-1)
        rms = np.sqrt(np.mean(norms**2))
        assert norms.max() > 2.5 * rms


class TestDatasetSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec("d", 12, 1, 1.0, {"velocity": 3})  # not multiple of 8
        with pytest.raises(ValueError):
            DatasetSpec("d", 16, 0, 1.0, {"velocity": 3})
        with pytest.raises(ValueError):
            DatasetSpec("d", 16, 1, 0.0, {"velocity": 3})
        with pytest.raises(ValueError):
            DatasetSpec("d", 16, 1, 1.0, {})

    def test_bytes_per_timestep(self):
        spec = DatasetSpec("d", 16, 1, 1.0, {"velocity": 3, "pressure": 1})
        assert spec.bytes_per_timestep("velocity") == 16**3 * 12
        assert spec.bytes_per_timestep("pressure") == 16**3 * 4


class TestSyntheticDatasets:
    def test_mhd_fields(self):
        ds = mhd_dataset(side=16, timesteps=3)
        assert set(ds.spec.fields) == {"velocity", "magnetic", "pressure"}
        velocity = ds.field_array("velocity", 0)
        assert velocity.shape == (16, 16, 16, 3)
        pressure = ds.field_array("pressure", 0)
        assert pressure.shape == (16, 16, 16, 1)

    def test_unknown_field_rejected(self):
        ds = isotropic_dataset(side=16)
        with pytest.raises(KeyError):
            ds.field_array("magnetic", 0)

    def test_timestep_bounds(self):
        ds = isotropic_dataset(side=16, timesteps=2)
        with pytest.raises(ValueError):
            ds.field_array("velocity", 2)
        with pytest.raises(ValueError):
            ds.field_array("velocity", -1)

    def test_deterministic_across_instances(self):
        a = mhd_dataset(side=16).field_array("velocity", 1)
        b = mhd_dataset(side=16).field_array("velocity", 1)
        assert np.array_equal(a, b)

    def test_timesteps_evolve_smoothly(self):
        ds = isotropic_dataset(side=32, timesteps=4)
        t0 = ds.field_array("velocity", 0).astype(np.float64)
        t1 = ds.field_array("velocity", 1).astype(np.float64)
        t3 = ds.field_array("velocity", 3).astype(np.float64)

        def correlation(a, b):
            return float(np.sum(a * b) / np.sqrt(np.sum(a * a) * np.sum(b * b)))

        near = correlation(t0, t1)
        far = correlation(t0, t3)
        assert near > 0.9  # adjacent steps strongly correlated
        assert far < near  # correlation decays with separation

    def test_energy_roughly_stationary(self):
        # The spectral background keeps constant energy; the intense
        # structures add a time-varying but bounded contribution.
        ds = isotropic_dataset(side=32, timesteps=4)
        energies = [
            float(np.mean(np.sum(ds.field_array("velocity", t).astype(np.float64) ** 2, -1)))
            for t in range(4)
        ]
        assert max(energies) / min(energies) < 2.0

    def test_background_energy_exactly_stationary(self):
        from repro.simulation.datasets import DatasetSpec, SyntheticDataset

        spec = DatasetSpec(
            "plain", 32, 4, 1.0, {"velocity": 3}, structures=None
        )
        ds = SyntheticDataset(spec)
        energies = [
            float(np.mean(np.sum(ds.field_array("velocity", t).astype(np.float64) ** 2, -1)))
            for t in range(4)
        ]
        # A and B are only statistically orthogonal, so allow the small
        # cross-term wobble of a finite grid.
        assert max(energies) / min(energies) < 1.2

    def test_array_cache_reuses_objects(self):
        ds = mhd_dataset(side=16)
        a = ds.field_array("velocity", 0)
        b = ds.field_array("velocity", 0)
        assert a is b

    def test_channel_mean_profile(self):
        ds = channel_dataset(side=32)
        velocity = ds.field_array("velocity", 0).astype(np.float64)
        streamwise_mean = velocity[..., 0].mean(axis=(0, 2))
        centre = streamwise_mean[16]
        wall = streamwise_mean[0]
        assert centre > wall + 0.5  # parabolic profile peaks mid-channel

    def test_channel_fluctuations_damped_at_walls(self):
        ds = channel_dataset(side=32)
        velocity = ds.field_array("velocity", 0).astype(np.float64)
        fluct = velocity[..., 1]  # wall-normal component has no mean
        wall_rms = np.sqrt((fluct[:, 0, :] ** 2).mean())
        centre_rms = np.sqrt((fluct[:, 16, :] ** 2).mean())
        assert wall_rms < 0.3 * centre_rms


class TestAtomize:
    def test_atom_count_and_order(self):
        field = np.zeros((16, 16, 16, 3), dtype=np.float32)
        atoms = list(atomize(field))
        assert len(atoms) == 8
        codes = [code for code, _ in atoms]
        assert codes == sorted(codes)

    def test_blob_round_trip(self):
        rng = np.random.default_rng(0)
        field = rng.normal(size=(16, 16, 16, 3)).astype(np.float32)
        for code, blob in atomize(field):
            block = blob_to_array(blob, 3)
            assert block.shape == (8, 8, 8, 3)
        # Check one specific atom's content.
        atoms = dict(atomize(field))
        blob = atoms[encode(8, 0, 0)]
        assert np.array_equal(blob_to_array(blob, 3), field[8:16, 0:8, 0:8])

    def test_scalar_field_atomizes(self):
        field = np.ones((8, 8, 8), dtype=np.float32)
        atoms = list(atomize(field))
        assert len(atoms) == 1
        assert blob_to_array(atoms[0][1], 1).shape == (8, 8, 8, 1)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            list(atomize(np.zeros((12, 12, 12, 3))))
        with pytest.raises(ValueError):
            list(atomize(np.zeros((8, 8, 16, 3))))
        with pytest.raises(ValueError):
            list(atomize(np.zeros((8, 8))))

    def test_blob_size_validation(self):
        with pytest.raises(ValueError):
            blob_to_array(b"123", 3)


class TestArrayFromAtoms:
    def test_reassemble_full_domain(self):
        rng = np.random.default_rng(1)
        field = rng.normal(size=(16, 16, 16, 3)).astype(np.float32)
        atoms = dict(atomize(field))
        out = array_from_atoms(Box.cube(16), atoms, 3)
        assert np.array_equal(out, field)

    def test_reassemble_partial_box(self):
        rng = np.random.default_rng(2)
        field = rng.normal(size=(16, 16, 16, 3)).astype(np.float32)
        atoms = dict(atomize(field))
        box = Box((3, 5, 6), (11, 13, 14))
        out = array_from_atoms(box, atoms, 3)
        assert np.array_equal(out, field[3:11, 5:13, 6:14])

    def test_missing_atom_detected(self):
        field = np.ones((16, 16, 16, 3), dtype=np.float32)
        atoms = dict(atomize(field))
        del atoms[encode(0, 0, 0)]
        with pytest.raises(ValueError):
            array_from_atoms(Box.cube(16), atoms, 3)

    def test_accepts_iterable_of_pairs(self):
        field = np.ones((8, 8, 8), dtype=np.float32)
        out = array_from_atoms(Box.cube(8), atomize(field), 1)
        assert out.shape == (8, 8, 8, 1)
