"""Wire-layer tests: framing, the message codec, and domain round-trips."""

import random
import socket
import struct
import threading

import numpy as np
import pytest

from repro.core.query import PdfQuery, ThresholdQuery, TopKQuery
from repro.core.threshold import NodeThresholdResult
from repro.costmodel import Category, CostLedger
from repro.grid import Box
from repro.morton import MortonRange
from repro.net import codec
from repro.net.compress import CompressionConfig, FrameCodec
from repro.net.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    FrameError,
    ProtocolError,
)
from repro.net.frame import (
    Deadline,
    FrameType,
    HEADER,
    MAGIC,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)


def _pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


# -- framing --------------------------------------------------------------------


def test_frame_round_trip_every_type():
    left, right = _pair()
    try:
        for frame_type in FrameType:
            payload = bytes([int(frame_type)]) * 37
            sent = send_frame(
                left, frame_type, 42 + frame_type, payload, Deadline.after(5)
            )
            assert sent == HEADER.size + len(payload)
            frame = recv_frame(right, Deadline.after(5))
            assert frame.frame_type == frame_type
            assert frame.request_id == 42 + frame_type
            assert frame.payload == payload
            assert frame.wire_bytes == sent
    finally:
        left.close()
        right.close()


def test_frame_round_trip_large_payload():
    """Payloads far past 64 KiB survive chunked sends and reads."""
    rng = random.Random(7)
    payload = rng.randbytes(3 * 1024 * 1024 + 17)
    left, right = _pair()
    received = {}

    def reader():
        received["frame"] = recv_frame(right, Deadline.after(30))

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        send_frame(left, FrameType.RESPONSE, 9, payload, Deadline.after(30))
        thread.join(timeout=30)
        frame = received["frame"]
        assert frame.frame_type == FrameType.RESPONSE
        assert frame.request_id == 9
        assert frame.payload == payload
    finally:
        left.close()
        right.close()


def test_truncated_payload_is_a_frame_error():
    """EOF mid-payload is truncation, not a clean close."""
    left, right = _pair()
    try:
        header = HEADER.pack(MAGIC, PROTOCOL_VERSION, 6, 0, 1, 100)
        left.sendall(header + b"only-some-bytes")
        left.close()
        with pytest.raises(FrameError, match="truncated"):
            recv_frame(right, Deadline.after(5))
    finally:
        right.close()


def test_truncated_header_is_a_frame_error():
    left, right = _pair()
    try:
        left.sendall(HEADER.pack(MAGIC, PROTOCOL_VERSION, 6, 0, 1, 0)[:7])
        left.close()
        with pytest.raises(FrameError, match="truncated"):
            recv_frame(right, Deadline.after(5))
    finally:
        right.close()


@pytest.mark.parametrize(
    "header_bytes, match",
    [
        (HEADER.pack(b"HTTP", PROTOCOL_VERSION, 6, 0, 1, 0), "magic"),
        (HEADER.pack(MAGIC, 99, 6, 0, 1, 0), "protocol 99"),
        (HEADER.pack(MAGIC, PROTOCOL_VERSION, 6, 7, 1, 0), "flags"),
        (HEADER.pack(MAGIC, PROTOCOL_VERSION, 250, 0, 1, 0), "frame type"),
        (
            HEADER.pack(MAGIC, PROTOCOL_VERSION, 6, 0, 1, 2**31),
            "ceiling",
        ),
    ],
)
def test_garbage_headers_are_rejected(header_bytes, match):
    left, right = _pair()
    try:
        left.sendall(header_bytes)
        with pytest.raises(FrameError, match=match):
            recv_frame(right, Deadline.after(5))
    finally:
        left.close()
        right.close()


def test_clean_eof_before_any_byte():
    left, right = _pair()
    left.close()
    try:
        assert recv_frame(right, Deadline.after(5), eof_ok=True) is None
        with pytest.raises(ConnectionLostError):
            recv_frame(right, Deadline.after(5), eof_ok=False)
    finally:
        right.close()


def test_recv_respects_the_deadline():
    left, right = _pair()
    try:
        with pytest.raises(DeadlineExceededError):
            recv_frame(right, Deadline.after(0.05))
    finally:
        left.close()
        right.close()


def test_deadline_contract():
    with pytest.raises(ValueError):
        Deadline.after(0)
    with pytest.raises(ValueError):
        Deadline.after(-1)
    spent = Deadline(expires_at=0.0)
    with pytest.raises(DeadlineExceededError):
        spent.remaining()
    assert Deadline.after(60).remaining() > 59


def test_oversized_send_is_refused():
    left, right = _pair()
    try:
        with pytest.raises(FrameError, match="ceiling"):
            send_frame(
                left,
                FrameType.REQUEST,
                1,
                _FakeHugePayload(),
                Deadline.after(5),
            )
    finally:
        left.close()
        right.close()


class _FakeHugePayload(bytes):
    """A bytes stand-in reporting an over-ceiling length (no allocation)."""

    def __len__(self):
        return 256 * 1024 * 1024 + 1


def test_vectored_parts_send_matches_concatenation():
    """A list of buffer parts arrives as one contiguous payload."""
    parts = [b"head", bytearray(b"-mid-"), memoryview(b"tail" * 100), b""]
    flat = b"".join(bytes(p) for p in parts)
    left, right = _pair()
    try:
        sent = send_frame(left, FrameType.REQUEST, 3, parts, Deadline.after(5))
        assert sent == HEADER.size + len(flat)
        frame = recv_frame(right, Deadline.after(5))
        assert frame.payload == flat
        assert frame.request_id == 3
    finally:
        left.close()
        right.close()


def test_compressed_frame_round_trip():
    """zlib-negotiated frames shrink on the wire and decode intact."""
    config = CompressionConfig(codecs=("zlib",), min_payload_bytes=64)
    ratios = []
    tx = FrameCodec(config, codec="zlib", on_ratio=ratios.append)
    rx = FrameCodec(config, codec="zlib")
    payload = b"abcdefgh" * 8192  # highly compressible
    left, right = _pair()
    try:
        sent = send_frame(
            left, FrameType.RESPONSE, 11, payload, Deadline.after(5), codec=tx
        )
        assert sent < HEADER.size + len(payload)
        frame = recv_frame(right, Deadline.after(5), codec=rx)
        assert frame.payload == payload
        assert frame.wire_bytes == sent
        assert ratios and ratios[0] > 1.0
    finally:
        left.close()
        right.close()


def test_small_frames_skip_compression():
    """Payloads under the threshold ride the wire raw."""
    config = CompressionConfig(codecs=("zlib",), min_payload_bytes=4096)
    tx = FrameCodec(config, codec="zlib")
    payload = b"tiny" * 8
    left, right = _pair()
    try:
        sent = send_frame(
            left, FrameType.RESPONSE, 1, payload, Deadline.after(5), codec=tx
        )
        assert sent == HEADER.size + len(payload)
        # Raw frames need no codec on the receive side.
        frame = recv_frame(right, Deadline.after(5))
        assert frame.payload == payload
    finally:
        left.close()
        right.close()


# -- message codec ---------------------------------------------------------------


def test_message_round_trip_randomised():
    """Property-style: random headers and blob shapes survive the codec."""
    rng = random.Random(1234)
    for _ in range(50):
        header = {
            "method": rng.choice(["threshold", "pdf", "halo"]),
            "n": rng.randint(-(2**40), 2**40),
            "f": rng.random(),
            "flag": rng.random() < 0.5,
            "nest": {"list": [rng.randint(0, 9) for _ in range(rng.randint(0, 5))]},
            "none": None,
        }
        blobs = [
            rng.randbytes(rng.randint(0, 4096))
            for _ in range(rng.randint(0, 6))
        ]
        decoded_header, decoded_blobs = codec.decode_message(
            codec.encode_message(header, blobs)
        )
        assert decoded_header == header
        assert decoded_blobs == blobs


def test_message_round_trip_huge_blob():
    """A blob well past 64 KiB crosses the codec byte-for-byte."""
    blob = random.Random(5).randbytes(512 * 1024 + 3)
    header, blobs = codec.decode_message(
        codec.encode_message({"m": "x"}, [b"", blob])
    )
    assert blobs == [b"", blob]


@pytest.mark.parametrize(
    "payload",
    [
        b"",  # no header length
        struct.pack("<I", 100),  # header length with no header
        struct.pack("<I", 2) + b"{}",  # missing blob count
        struct.pack("<I", 2) + b"{}" + struct.pack("<H", 1),  # missing blob
        codec.encode_message({"a": 1}) + b"junk",  # trailing bytes
        struct.pack("<I", 4) + b"[1icaccount]"[:4] + struct.pack("<H", 0),
    ],
)
def test_garbage_messages_are_protocol_errors(payload):
    with pytest.raises(ProtocolError):
        codec.decode_message(payload)


def test_non_object_header_is_rejected():
    head = b"[1,2]"
    payload = struct.pack("<I", len(head)) + head + struct.pack("<H", 0)
    with pytest.raises(ProtocolError, match="JSON object"):
        codec.decode_message(payload)


def test_blob_cap_is_enforced():
    with pytest.raises(ProtocolError, match="cap"):
        codec.encode_message({}, [b""] * (codec.MAX_BLOBS + 1))


# -- domain round-trips ----------------------------------------------------------


def test_query_round_trips():
    tq = ThresholdQuery(
        dataset="mhd",
        field="vorticity",
        timestep=3,
        threshold=1.5,
        box=Box((0, 0, 0), (15, 15, 15)),
        fd_order=6,
    )
    assert codec.threshold_query_from_wire(codec.threshold_query_to_wire(tq)) == tq
    pq = PdfQuery(
        dataset="iso",
        field="pressure",
        timestep=0,
        bin_edges=(-1.0, 0.0, 1.0),
        fd_order=4,
    )
    assert codec.pdf_query_from_wire(codec.pdf_query_to_wire(pq)) == pq
    kq = TopKQuery(dataset="mhd", field="qcriterion", timestep=1, k=128)
    assert codec.topk_query_from_wire(codec.topk_query_to_wire(kq)) == kq


def test_boxes_and_ranges_round_trip():
    boxes = [Box((0, 0, 0), (7, 7, 7)), Box((8, 0, 0), (15, 7, 7))]
    assert codec.boxes_from_wire(codec.boxes_to_wire(boxes)) == boxes
    ranges = [MortonRange(0, 100), MortonRange(4096, 8191)]
    assert codec.ranges_from_wire(codec.ranges_to_wire(ranges)) == ranges


def test_threshold_result_round_trip_preserves_ledger():
    ledger = CostLedger()
    ledger.charge(Category.IO, 1.25)
    ledger.charge(Category.COMPUTE, 0.5)
    ledger.count("wire_bytes", 100.0)
    result = NodeThresholdResult(
        np.array([5, 9, 1 << 50], dtype=np.uint64),
        np.array([0.5, -1.5, 2.25], dtype=np.float64),
        ledger,
        cache_hit=True,
        boxes_evaluated=4,
        cache_stored=False,
    )
    rebuilt = codec.threshold_result_from_wire(
        *codec.threshold_result_to_wire(result)
    )
    assert np.array_equal(rebuilt.zindexes, result.zindexes)
    assert np.array_equal(rebuilt.values, result.values)
    assert rebuilt.cache_hit and not rebuilt.cache_stored
    assert rebuilt.boxes_evaluated == 4
    assert rebuilt.ledger.breakdown() == ledger.breakdown()
    assert rebuilt.ledger.meters() == ledger.meters()


def test_halo_atoms_round_trip():
    rng = random.Random(99)
    atoms = {z: rng.randbytes(64) for z in (0, 7, 4096, 2**40)}
    rebuilt = codec.halo_atoms_from_wire(*codec.halo_atoms_to_wire(atoms))
    assert rebuilt == atoms
    assert codec.halo_atoms_from_wire(*codec.halo_atoms_to_wire({})) == {}


def test_halo_atoms_unequal_sizes_are_rejected():
    with pytest.raises(ProtocolError, match="unequal"):
        codec.halo_atoms_to_wire({1: b"abc", 2: b"toolong"})
