"""COST01 (cost accounting / wall-clock ban) checker tests."""

from repro.lint.checkers.cost01 import CostAccounting

from tests.lint_helpers import load, run_checker


def test_clean_fixture_passes():
    source = load("cost01_good.py", "repro.core.fixture_good")
    assert run_checker(CostAccounting(), source) == []


def test_bad_fixture_reports_each_violation():
    source = load("cost01_bad.py", "repro.core.fixture_bad")
    diags = run_checker(CostAccounting(), source)
    assert len(diags) == 3
    messages = "\n".join(d.message for d in diags)
    assert "from time import perf_counter" in messages
    assert "time.time()" in messages
    assert "computed but discarded" in messages


def test_harness_and_benchmarks_are_exempt():
    checker = CostAccounting()
    assert not checker.applies("repro.harness.bench")
    assert not checker.applies("repro.benchmarks.figure9")
    assert checker.applies("repro.core.threshold")
    assert checker.applies("repro.costmodel.devices")
    assert not checker.applies("numpy.random")


def test_wall_clock_allowed_in_harness_scope():
    # The same violating text is clean when scoped under the harness.
    source = load("cost01_bad.py", "repro.harness.fixture")
    assert not CostAccounting().applies(source.module)
