"""Tests for batched threshold evaluation with shared scans."""

import numpy as np
import pytest

from repro.core import ThresholdQuery, ThresholdTooLowError
from repro.costmodel import Category
from repro.costmodel.ledger import METER_IO_BYTES
from repro.fields import default_registry
from repro.core.batch import check_batchable
from tests.test_core_threshold import ground_truth_norm


def make_batch(small_mhd, q_vort=0.999, q_q=0.999):
    vorticity_norm = ground_truth_norm(small_mhd, "vorticity", 0)
    thr_v = float(np.quantile(vorticity_norm, q_vort))
    # Q-criterion threshold via the registry's own kernel.
    return [
        ThresholdQuery("mhd", "vorticity", 0, thr_v),
        ThresholdQuery("mhd", "q_criterion", 0, thr_v**2),
    ]


class TestValidation:
    def test_batchable_pair(self, small_mhd):
        queries = make_batch(small_mhd)
        assert check_batchable(queries, default_registry()) == "velocity"

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            check_batchable([], default_registry())

    def test_mixed_source_rejected(self):
        queries = [
            ThresholdQuery("mhd", "vorticity", 0, 1.0),
            ThresholdQuery("mhd", "magnetic", 0, 1.0),
        ]
        with pytest.raises(ValueError):
            check_batchable(queries, default_registry())

    def test_mixed_timestep_rejected(self):
        queries = [
            ThresholdQuery("mhd", "vorticity", 0, 1.0),
            ThresholdQuery("mhd", "vorticity", 1, 1.0),
        ]
        with pytest.raises(ValueError):
            check_batchable(queries, default_registry())


class TestBatchCorrectness:
    def test_matches_individual_queries(self, small_mhd, mhd_cluster):
        queries = make_batch(small_mhd)
        individual = [
            mhd_cluster.threshold(q, use_cache=False) for q in queries
        ]
        mhd_cluster.drop_page_caches()
        batch = mhd_cluster.batch_threshold(queries, use_cache=False)
        assert len(batch) == 2
        for got, expected in zip(batch.results, individual):
            assert np.array_equal(got.zindexes, expected.zindexes)
            assert np.allclose(got.values, expected.values, atol=1e-9)

    def test_batch_reads_once(self, small_mhd, mhd_cluster):
        """Two same-source queries cost one scan, not two."""
        queries = make_batch(small_mhd)
        mhd_cluster.drop_page_caches()
        single = mhd_cluster.threshold(queries[0], use_cache=False)
        mhd_cluster.drop_page_caches()
        batch = mhd_cluster.batch_threshold(queries, use_cache=False)
        assert batch.ledger.meter(METER_IO_BYTES) == pytest.approx(
            single.ledger.meter(METER_IO_BYTES), rel=0.1
        )

    def test_batch_cheaper_than_sequential(self, small_mhd, mhd_cluster):
        queries = make_batch(small_mhd)
        mhd_cluster.drop_page_caches()
        sequential = 0.0
        for query in queries:
            result = mhd_cluster.threshold(query, use_cache=False)
            sequential += result.elapsed
            mhd_cluster.drop_page_caches()
        batch = mhd_cluster.batch_threshold(queries, use_cache=False)
        assert batch.ledger.total < 0.8 * sequential

    def test_compute_charged_for_every_field(self, small_mhd, mhd_cluster):
        queries = make_batch(small_mhd)
        mhd_cluster.drop_page_caches()
        batch = mhd_cluster.batch_threshold(queries, use_cache=False)
        single = mhd_cluster.threshold(queries[0], use_cache=False)
        assert batch.ledger[Category.COMPUTE] > single.ledger[Category.COMPUTE]


class TestBatchCaching:
    def test_batch_populates_cache_per_query(self, small_mhd, mhd_cluster):
        queries = make_batch(small_mhd)
        first = mhd_cluster.batch_threshold(queries)
        assert all(r.cache_hits == 0 for r in first.results)
        second = mhd_cluster.batch_threshold(queries)
        assert all(
            r.cache_hits == len(mhd_cluster.nodes) for r in second.results
        )

    def test_partial_batch_hit_evaluates_only_misses(self, small_mhd, mhd_cluster):
        queries = make_batch(small_mhd)
        mhd_cluster.threshold(queries[0])  # warm only the vorticity entry
        mhd_cluster.drop_page_caches()
        batch = mhd_cluster.batch_threshold(queries)
        assert batch.results[0].cache_hits == len(mhd_cluster.nodes)
        assert batch.results[1].cache_hits == 0
        # Points are still correct for both.
        norm = ground_truth_norm(small_mhd, "vorticity", 0)
        assert len(batch.results[0]) == (norm >= queries[0].threshold).sum()

    def test_limit_applies_per_query(self, small_mhd, mhd_cluster):
        queries = [
            ThresholdQuery("mhd", "vorticity", 0, 0.0),
            ThresholdQuery("mhd", "q_criterion", 0, 1e12),
        ]
        with pytest.raises(ThresholdTooLowError):
            mhd_cluster.batch_threshold(queries, use_cache=False, max_points=100)
