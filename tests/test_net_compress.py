"""Codec-layer tests: shuffle/delta pre-transforms, probe edges, negotiation."""

import numpy as np
import pytest

from repro.net.compress import (
    CODEC_DELTA_ZLIB,
    CODEC_IDS,
    CODEC_NONE,
    CODEC_SHUFFLE_ZLIB,
    CODEC_ZLIB,
    CompressionConfig,
    FrameCodec,
    _delta_forward,
    _delta_inverse,
    _SHUFFLE_BLOCK,
    _shuffle_lanes,
    _unshuffle_lanes,
    negotiate,
    shared_codecs,
)
from repro.net.errors import FrameError


def _round_trip(codec_name: str, parts: list[bytes]) -> None:
    """Encode with one codec forced, decode, compare byte-for-byte."""
    config = CompressionConfig(codecs=(codec_name,), min_payload_bytes=0)
    tx = FrameCodec(config, codec=codec_name, allowed=(codec_name,))
    rx = FrameCodec(config, codec=codec_name, allowed=(codec_name,))
    total = sum(len(part) for part in parts)
    codec_id, wire_parts, wire_total = tx.encode(parts, total)
    joined = b"".join(bytes(part) for part in wire_parts)
    assert wire_total == len(joined)
    if codec_id == CODEC_NONE:
        assert joined == b"".join(parts)
        return
    assert bytes(rx.decode(codec_id, joined)) == b"".join(parts)


# -- pre-transform round trips ---------------------------------------------------


@pytest.mark.parametrize(
    "nbytes",
    [
        0,
        1,
        7,
        8,
        16,
        _SHUFFLE_BLOCK - 8,
        _SHUFFLE_BLOCK,
        _SHUFFLE_BLOCK + 8,
        _SHUFFLE_BLOCK + 13,
        3 * _SHUFFLE_BLOCK + 40,
    ],
)
def test_shuffle_inverts_at_every_block_edge(nbytes):
    """Blocked shuffle round-trips across block/word/ragged boundaries."""
    rng = np.random.default_rng(nbytes)
    flat = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
    shuffled = _shuffle_lanes(flat)
    assert np.array_equal(_unshuffle_lanes(shuffled), flat)


def test_shuffle_groups_lanes():
    """Byte k of every word lands in the k-th lane within a block."""
    words = np.arange(_SHUFFLE_BLOCK // 8, dtype=np.uint64)
    flat = words.view(np.uint8)
    shuffled = _shuffle_lanes(flat)
    lane = _SHUFFLE_BLOCK // 8
    assert np.array_equal(shuffled[:lane], flat[0::8])
    assert np.array_equal(shuffled[7 * lane :], flat[7::8])


@pytest.mark.parametrize("codec_name", ["shuffle-zlib", "delta-zlib"])
def test_codec_round_trips_pointset_columns(codec_name):
    """Sorted keys + float values survive each pre-transform codec."""
    rng = np.random.default_rng(7)
    zindexes = np.cumsum(
        rng.integers(1, 64, size=50_000, dtype=np.uint64)
    )
    values = rng.normal(size=50_000)
    _round_trip(codec_name, [zindexes.tobytes(), values.tobytes()])


@pytest.mark.parametrize("codec_name", ["shuffle-zlib", "delta-zlib"])
def test_codec_round_trips_ragged_parts(codec_name):
    """Empty, short and 8-misaligned parts survive the transforms."""
    rng = np.random.default_rng(13)
    parts = [
        b"",
        b"abc",
        rng.integers(0, 256, size=63, dtype=np.uint8).tobytes(),
        np.arange(4096, dtype=np.uint64).tobytes(),
        b"x" * 8191,
    ]
    _round_trip(codec_name, parts)


def test_delta_shrinks_sorted_keys_more_than_plain_zlib():
    """The whole point: sorted Morton keys delta down to almost nothing."""
    import zlib

    keys = np.cumsum(
        np.random.default_rng(3).integers(
            1, 16, size=100_000, dtype=np.uint64
        )
    )
    payload = keys.tobytes()
    plain = len(zlib.compress(payload, 1))
    container = _delta_forward([payload], len(payload))
    delta = len(zlib.compress(container, 1))
    assert delta < plain / 2


# -- delta container hardening ---------------------------------------------------


def test_delta_container_truncated_header():
    with pytest.raises(FrameError, match="shorter than its header"):
        _delta_inverse(np.frombuffer(b"\x01", dtype=np.uint8))


def test_delta_container_absurd_part_count():
    bad = np.frombuffer(b"\xff\xff\xff\xff", dtype=np.uint8)
    with pytest.raises(FrameError, match="declares"):
        _delta_inverse(bad)


def test_delta_container_length_mismatch():
    container = np.array(
        _delta_forward([b"A" * 64], 64), dtype=np.uint8
    ).copy()
    with pytest.raises(FrameError, match="declares"):
        _delta_inverse(container[:-8])


# -- encode/probe edge cases -----------------------------------------------------


def test_payload_exactly_at_threshold_is_eligible():
    """``min_payload_bytes`` is inclusive: a payload of exactly that
    size goes through the probe and compresses."""
    payload = b"abcdefgh" * 512  # 4096 bytes, highly compressible
    config = CompressionConfig(codecs=("zlib",), min_payload_bytes=4096)
    tx = FrameCodec(config, codec="zlib")
    codec_id, parts, total = tx.encode([payload], len(payload))
    assert codec_id == CODEC_ZLIB
    assert total < len(payload)
    # One byte under the threshold ships raw without probing.
    short = payload[:-1]
    codec_id, parts, total = tx.encode([short], len(short))
    assert codec_id == CODEC_NONE
    assert total == len(short)


def test_incompressible_probe_sample_skips_a_compressible_body():
    """The probe judges the frame by its first 4 KiB: when that sample
    is incompressible the frame ships raw even though the rest of the
    body would have compressed — the documented cheap-probe trade."""
    rng = np.random.default_rng(5)
    noise = rng.integers(0, 256, size=8192, dtype=np.uint8).tobytes()
    body = noise + b"\x00" * (1 << 20)
    config = CompressionConfig(codecs=("zlib",), min_payload_bytes=64)
    tx = FrameCodec(config, codec="zlib")
    codec_id, parts, total = tx.encode([body], len(body))
    assert codec_id == CODEC_NONE
    assert total == len(body)
    assert tx.frames_compressed == 0
    # The same body with the compressible bytes up front compresses.
    codec_id, _, total = tx.encode([body[::-1]], len(body))
    assert codec_id == CODEC_ZLIB
    assert total < len(body)


def test_unknown_codec_id_is_a_frame_error():
    config = CompressionConfig()
    rx = FrameCodec(config, codec="zlib")
    with pytest.raises(FrameError, match="unknown frame codec id 200"):
        rx.decode(200, b"anything")


def test_unadvertised_codec_id_is_a_frame_error():
    """A peer must not use a codec this endpoint never advertised."""
    config = CompressionConfig(codecs=("zlib",))
    rx = FrameCodec(config, codec="zlib")
    with pytest.raises(FrameError, match="never advertised"):
        rx.decode(CODEC_DELTA_ZLIB, b"anything")


def test_corrupt_compressed_payload_is_a_frame_error():
    config = CompressionConfig()
    rx = FrameCodec(config, codec="zlib")
    with pytest.raises(FrameError, match="corrupt"):
        rx.decode(CODEC_SHUFFLE_ZLIB, b"not a zlib stream")


# -- negotiation -----------------------------------------------------------------


def test_negotiate_prefers_local_order():
    assert negotiate(("zlib", "shuffle-zlib"), ("shuffle-zlib", "zlib")) == "zlib"
    assert negotiate((), ("zlib",)) == "none"
    assert negotiate(("zlib",), ()) == "none"


def test_peers_sharing_only_the_shuffle_codec():
    """A modern peer meeting a shuffle-only peer negotiates shuffle as
    primary and probes nothing else."""
    modern = CompressionConfig()
    local = modern.codecs
    remote = ("shuffle-zlib",)
    assert negotiate(local, remote) == "shuffle-zlib"
    allowed = shared_codecs(local, remote)
    assert allowed == ("shuffle-zlib",)
    tx = FrameCodec(modern, codec="shuffle-zlib", allowed=allowed)
    payload = np.arange(50_000, dtype=np.uint64).tobytes()
    codec_id, parts, total = tx.encode([payload], len(payload))
    assert codec_id == CODEC_SHUFFLE_ZLIB
    assert total < len(payload)
    rx = FrameCodec(modern, codec="shuffle-zlib", allowed=allowed)
    assert bytes(rx.decode(codec_id, b"".join(bytes(p) for p in parts))) == payload


def test_shared_codecs_keeps_local_preference_order():
    assert shared_codecs(
        ("zlib", "shuffle-zlib", "delta-zlib"),
        ("delta-zlib", "zlib"),
    ) == ("zlib", "delta-zlib")


def test_codec_ids_are_stable():
    """The flags-byte table is wire format — ids must never move."""
    assert CODEC_IDS == {
        "none": 0,
        "zlib": 1,
        "shuffle-zlib": 2,
        "delta-zlib": 3,
    }
