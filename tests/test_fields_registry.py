"""Tests for the derived-field registry."""

import numpy as np
import pytest

from repro.fields import (
    DerivedField,
    FieldRegistry,
    UnknownFieldError,
    curl_periodic,
    default_registry,
    kernel_half_width,
)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def padded_block(field, margin):
    if margin == 0:
        return field
    return np.pad(field, [(margin,) * 2] * 3 + [(0, 0)], mode="wrap")


class TestRegistry:
    def test_stock_fields_present(self, registry):
        for name in (
            "vorticity",
            "q_criterion",
            "r_invariant",
            "electric_current",
            "magnetic",
            "velocity",
            "pressure",
        ):
            assert name in registry

    def test_unknown_field(self, registry):
        with pytest.raises(UnknownFieldError):
            registry.get("enstrophy")

    def test_duplicate_registration_rejected(self):
        registry = FieldRegistry()
        field = default_registry().get("vorticity")
        registry.register(field)
        with pytest.raises(ValueError):
            registry.register(field)

    def test_names_sorted(self, registry):
        assert registry.names() == sorted(registry.names())

    def test_halo_of_differential_fields(self, registry):
        assert registry.get("vorticity").halo(4) == 2
        assert registry.get("q_criterion").halo(8) == 4

    def test_halo_of_raw_fields_is_zero(self, registry):
        assert registry.get("magnetic").halo(4) == 0
        assert registry.get("pressure").halo(8) == 0

    def test_sources(self, registry):
        assert registry.get("vorticity").source == "velocity"
        assert registry.get("electric_current").source == "magnetic"

    def test_compute_costs_ordering(self, registry):
        """Q-criterion must cost more than vorticity; raw fields ~nothing."""
        vorticity = registry.get("vorticity").units_per_point
        q = registry.get("q_criterion").units_per_point
        raw = registry.get("magnetic").units_per_point
        assert q > vorticity > raw


class TestNormKernels:
    def test_vorticity_norm_matches_curl(self, registry):
        rng = np.random.default_rng(0)
        velocity = rng.normal(size=(16, 16, 16, 3))
        spacing, order = 0.5, 4
        field = registry.get("vorticity")
        block = padded_block(velocity, field.halo(order))
        norm = field.norm(block, spacing, order)
        expected = np.linalg.norm(curl_periodic(velocity, spacing, order), axis=-1)
        assert norm.shape == (16, 16, 16)
        assert np.allclose(norm, expected, atol=1e-10)

    def test_q_criterion_norm_is_nonnegative(self, registry):
        rng = np.random.default_rng(1)
        velocity = rng.normal(size=(16, 16, 16, 3))
        field = registry.get("q_criterion")
        block = padded_block(velocity, field.halo(4))
        norm = field.norm(block, 0.5, 4)
        assert (norm >= 0).all()

    def test_raw_vector_norm(self, registry):
        field = registry.get("magnetic")
        block = np.zeros((4, 4, 4, 3))
        block[..., 0] = 3.0
        block[..., 1] = 4.0
        assert np.allclose(field.norm(block, 1.0, 4), 5.0)

    def test_raw_scalar_norm_is_abs(self, registry):
        field = registry.get("pressure")
        block = np.full((4, 4, 4, 1), -2.5)
        assert np.allclose(field.norm(block, 1.0, 4), 2.5)

    def test_electric_current_uses_magnetic_source(self, registry):
        rng = np.random.default_rng(2)
        magnetic = rng.normal(size=(12, 12, 12, 3))
        field = registry.get("electric_current")
        block = padded_block(magnetic, field.halo(2))
        norm = field.norm(block, 1.0, 2)
        expected = np.linalg.norm(curl_periodic(magnetic, 1.0, 2), axis=-1)
        assert np.allclose(norm, expected, atol=1e-10)

    @pytest.mark.parametrize("order", [2, 4, 6, 8])
    def test_vorticity_norm_all_orders(self, registry, order):
        rng = np.random.default_rng(3)
        velocity = rng.normal(size=(20, 20, 20, 3))
        field = registry.get("vorticity")
        block = padded_block(velocity, field.halo(order))
        norm = field.norm(block, 1.0, order)
        assert norm.shape == (20, 20, 20)
        assert np.isfinite(norm).all()
