"""Runtime lock-order sanitizer tests (repro.sanitize).

Every test installs with ``instrument_all=True`` (the creation-site
filter would otherwise exclude locks created in test files) and
uninstalls in ``finally`` so the patched factories never leak into the
rest of the suite.
"""

import json
import threading

import pytest

from repro import sanitize
from repro.sanitize.lockdep import _state


def _fresh_install():
    if _state.installed:
        pytest.skip("sanitizer already active in this session")
    return sanitize.install(instrument_all=True)


def test_install_patches_and_uninstall_restores():
    real_lock = threading.Lock
    reg = _fresh_install()
    try:
        assert threading.Lock is not real_lock
        lock = threading.Lock()
        assert isinstance(lock, sanitize.TrackedLock)
        with lock:
            assert reg.held()
        assert reg.held() == []
    finally:
        sanitize.uninstall()
    assert threading.Lock is real_lock
    assert type(threading.Lock()).__name__ == "lock"


def test_nested_acquisition_records_an_edge():
    reg = _fresh_install()
    try:
        a = threading.Lock()
        b = threading.Lock()
        with a:
            with b:
                pass
        assert len(reg.edges) == 1
        ((held, taken),) = reg.edges
        assert held != taken
    finally:
        sanitize.uninstall()


def test_inversion_raises_and_is_recorded():
    reg = _fresh_install()
    try:
        a = threading.Lock()
        b = threading.Lock()
        with a:
            with b:
                pass
        with b:
            with pytest.raises(sanitize.LockOrderError) as exc:
                with a:
                    pass
        assert "lock-order inversion" in str(exc.value)
        assert len(reg.inversions) == 1
    finally:
        sanitize.uninstall()


def test_same_site_pairs_are_not_inversions():
    reg = _fresh_install()
    try:
        def make():
            return threading.Lock()  # one site, many instances

        first, second = make(), make()
        with first:
            with second:
                pass
        with second:
            with first:
                pass
        assert reg.inversions == []
        assert reg.edges == {}
    finally:
        sanitize.uninstall()


def test_rlock_reentrancy_and_condition_wait():
    reg = _fresh_install()
    try:
        rlock = threading.RLock()
        assert isinstance(rlock, sanitize.TrackedRLock)
        with rlock:
            with rlock:
                assert len(reg.held()) == 2
            assert len(reg.held()) == 1
        assert reg.held() == []
        assert reg.inversions == []

        cond = threading.Condition(threading.Lock())
        with cond:
            cond.wait(timeout=0.01)
        assert reg.held() == []
    finally:
        sanitize.uninstall()


def test_blocking_primitives_are_wrapped_and_restored():
    import repro.net.frame as frame
    import repro.net.client as client

    real = frame.send_frame
    _fresh_install()
    try:
        assert getattr(frame.send_frame, "__wrapped__", None) is real
        assert getattr(client.send_frame, "__wrapped__", None) is real
    finally:
        sanitize.uninstall()
    assert frame.send_frame is real
    assert client.send_frame is real


def test_witness_export_resolves_class_attr_labels(tmp_path):
    module = tmp_path / "fixture_sanitize.py"
    module.write_text(
        '"""Fixture."""\n\n'
        "import threading\n\n\n"
        "class Pair:\n"
        '    """Two ordered locks."""\n\n'
        "    def __init__(self):\n"
        "        self.first = threading.Lock()\n"
        "        self.second = threading.Lock()\n\n"
        "    def both(self):\n"
        '        """Take both locks in order."""\n'
        "        with self.first:\n"
        "            with self.second:\n"
        "                pass\n"
    )
    _fresh_install()
    try:
        namespace = {"__file__": str(module), "__name__": "fixture_sanitize"}
        exec(compile(module.read_text(), str(module), "exec"), namespace)
        pair = namespace["Pair"]()
        pair.both()
        payload = sanitize.export_witness(tmp_path / "witness.json")
    finally:
        sanitize.uninstall()
    assert payload["edges"] == [
        {"from": "Pair.first", "to": "Pair.second", "count": 1}
    ]
    on_disk = json.loads((tmp_path / "witness.json").read_text())
    assert on_disk == payload
