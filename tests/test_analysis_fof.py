"""Tests for friends-of-friends clustering (3-D and 4-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import friends_of_friends, friends_of_friends_4d


def cluster_sets(clusters):
    return {frozenset(c.indices.tolist()) for c in clusters}


class TestFriendsOfFriends3d:
    def test_empty_input(self):
        assert friends_of_friends(np.empty((0, 3)), np.empty(0), 32) == []

    def test_single_point(self):
        clusters = friends_of_friends(np.array([[1, 2, 3]]), np.array([5.0]), 32)
        assert len(clusters) == 1
        assert clusters[0].size == 1
        assert clusters[0].peak_value == 5.0

    def test_two_near_points_link(self):
        coords = np.array([[0, 0, 0], [0, 0, 2]])
        clusters = friends_of_friends(coords, np.array([1.0, 2.0]), 32, 2)
        assert len(clusters) == 1
        assert clusters[0].size == 2

    def test_two_far_points_do_not_link(self):
        coords = np.array([[0, 0, 0], [0, 0, 5]])
        clusters = friends_of_friends(coords, np.array([1.0, 2.0]), 32, 2)
        assert len(clusters) == 2

    def test_chain_links_transitively(self):
        coords = np.array([[0, 0, 0], [0, 0, 2], [0, 0, 4], [0, 0, 6]])
        clusters = friends_of_friends(coords, np.ones(4), 32, 2)
        assert len(clusters) == 1 and clusters[0].size == 4

    def test_periodic_wraparound_links(self):
        coords = np.array([[0, 0, 0], [0, 0, 31]])
        clusters = friends_of_friends(coords, np.ones(2), 32, 2)
        assert len(clusters) == 1

    def test_chebyshev_metric(self):
        # Diagonal neighbours at (2, 2, 2) offset have Chebyshev distance 2.
        coords = np.array([[0, 0, 0], [2, 2, 2]])
        assert len(friends_of_friends(coords, np.ones(2), 32, 2)) == 1
        assert len(friends_of_friends(coords, np.ones(2), 32, 1)) == 2

    def test_peak_identification(self):
        coords = np.array([[0, 0, 0], [0, 0, 1], [0, 0, 2]])
        values = np.array([1.0, 9.0, 2.0])
        clusters = friends_of_friends(coords, values, 32, 1)
        assert clusters[0].peak_index == 1
        assert clusters[0].peak_value == 9.0

    def test_min_size_filters(self):
        coords = np.array([[0, 0, 0], [10, 10, 10], [10, 10, 11]])
        clusters = friends_of_friends(coords, np.ones(3), 32, 1, min_size=2)
        assert len(clusters) == 1
        assert clusters[0].size == 2

    def test_sorted_by_size_then_peak(self):
        coords = np.array(
            [[0, 0, 0], [0, 0, 1], [0, 0, 2], [10, 0, 0], [20, 0, 0]]
        )
        values = np.array([1.0, 1.0, 1.0, 5.0, 9.0])
        clusters = friends_of_friends(coords, values, 32, 1)
        assert [c.size for c in clusters] == [3, 1, 1]
        assert clusters[1].peak_value == 9.0  # ties broken by peak

    def test_validation(self):
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((2, 2)), np.zeros(2), 32)
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((2, 3)), np.zeros(3), 32)

    def test_lifetime_zero_for_3d(self):
        clusters = friends_of_friends(np.array([[0, 0, 0]]), np.ones(1), 32)
        assert clusters[0].lifetime == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(*[st.integers(0, 15)] * 3), min_size=1,
                    max_size=40, unique=True))
    def test_matches_brute_force(self, points):
        """FoF labels agree with brute-force connected components."""
        side, length = 16, 2
        coords = np.array(points)
        values = np.arange(len(points), dtype=float)
        clusters = friends_of_friends(coords, values, side, length)

        # Brute-force union-find over all pairs with periodic Chebyshev.
        parent = list(range(len(points)))

        def find(i):
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                dist = max(
                    min(abs(a - b), side - abs(a - b))
                    for a, b in zip(points[i], points[j])
                )
                if dist <= length:
                    parent[find(i)] = find(j)
        expected = {}
        for i in range(len(points)):
            expected.setdefault(find(i), set()).add(i)
        assert cluster_sets(clusters) == {
            frozenset(group) for group in expected.values()
        }


class TestFriendsOfFriends4d:
    def test_same_place_adjacent_times_link(self):
        timesteps = np.array([0, 1])
        coords = np.array([[5, 5, 5], [5, 5, 6]])
        clusters = friends_of_friends_4d(timesteps, coords, np.ones(2), 32, 2)
        assert len(clusters) == 1
        assert clusters[0].timesteps == (0, 1)
        assert clusters[0].lifetime == 2

    def test_time_gap_beyond_linking_separates(self):
        timesteps = np.array([0, 5])
        coords = np.array([[5, 5, 5], [5, 5, 5]])
        clusters = friends_of_friends_4d(timesteps, coords, np.ones(2), 32, 2)
        assert len(clusters) == 2

    def test_time_gap_at_linking_length_links(self):
        timesteps = np.array([0, 2])
        coords = np.array([[5, 5, 5], [5, 5, 5]])
        clusters = friends_of_friends_4d(timesteps, coords, np.ones(2), 32, 2)
        assert len(clusters) == 1

    def test_moving_structure_traced_through_time(self):
        # A blob drifting 2 cells/step stays one 4-D cluster.
        timesteps = np.arange(5)
        coords = np.array([[i * 2, 0, 0] for i in range(5)])
        clusters = friends_of_friends_4d(
            timesteps, coords, np.ones(5), 64, 2
        )
        assert len(clusters) == 1
        assert clusters[0].timesteps == (0, 1, 2, 3, 4)

    def test_empty(self):
        assert friends_of_friends_4d(
            np.empty(0), np.empty((0, 3)), np.empty(0), 32
        ) == []

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            friends_of_friends_4d(
                np.zeros(2), np.zeros((3, 3)), np.zeros(3), 32
            )
