"""Unit tests for the ``repro.ha`` building blocks.

The chaos proof (``test_ha_failover.py``) exercises the integrated
system; this file pins the individual contracts — placement spreading,
router ordering and health transitions, the failover predicate, pool
hygiene (idle TTL, probe-failure eviction), replicated halo reads, and
digest anti-entropy.
"""

from __future__ import annotations

import pytest

from repro.cluster.node import _atom_table_name
from repro.cluster.partition import MortonPartitioner
from repro.core import ThresholdQuery
from repro.grid.atoms import ATOM_VOLUME
from repro.ha import PlacementMap, ReplicaRouter, chunk_digests
from repro.ha.anti_entropy import catch_up, coalesce_atoms, diverging_atoms
from repro.ha.failover import failover_worthy
from repro.morton import MortonRange
from repro.net.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    NodeUnavailableError,
    PartialFailureError,
    ProtocolError,
    RemoteCallError,
)
from repro.net.pool import ConnectionPool
from repro.net.server import ClusterConfig, NodeServer, ReplicatedHaloPeer
from repro.obs import clock


# -- placement -----------------------------------------------------------------


def test_placement_r1_is_identity():
    placement = PlacementMap(4, 4, 1)
    for shard in range(4):
        assert placement.replicas_of(shard) == (shard,)
        assert placement.shards_of(shard) == (shard,)
        assert placement.owns(shard, shard)
        assert not placement.owns(shard, (shard + 1) % 4)


def test_placement_ring_spread():
    placement = PlacementMap(4, 4, 2)
    assert [placement.replicas_of(s) for s in range(4)] == [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 0),
    ]
    # shards_of is the exact inverse of replicas_of.
    for node in range(4):
        for shard in placement.shards_of(node):
            assert node in placement.replicas_of(shard)
    for shard in range(4):
        for node in placement.replicas_of(shard):
            assert shard in placement.shards_of(node)


def test_placement_prefers_other_racks():
    placement = PlacementMap(4, 4, 2, racks=("a", "a", "b", "b"))
    # Shard 0's primary sits in rack "a", so its second copy skips
    # node 1 (same rack) for node 2.
    assert placement.replicas_of(0) == (0, 2)
    assert placement.replicas_of(2) == (2, 0)


def test_placement_full_replication():
    placement = PlacementMap(2, 2, 2)
    for node in range(2):
        assert placement.shards_of(node) == (0, 1)


def test_placement_validation():
    with pytest.raises(ValueError):
        PlacementMap(2, 4, 1)  # shards must equal nodes
    with pytest.raises(ValueError):
        PlacementMap(2, 2, 3)  # more copies than nodes
    with pytest.raises(ValueError):
        PlacementMap(2, 2, 0)
    with pytest.raises(ValueError):
        PlacementMap(2, 2, 2, racks=("a",))  # one rack label per node


def test_placement_wire_round_trip():
    placement = PlacementMap(4, 4, 2)
    wire = placement.to_wire()
    assert wire["replication_factor"] == 2
    assert wire["replicas"] == [[0, 1], [1, 2], [2, 3], [3, 0]]


def test_placement_from_partitioner():
    partitioner = MortonPartitioner(16, 2)
    placement = PlacementMap.from_partitioner(partitioner, 2)
    assert placement.shards == 2
    assert placement.replication_factor == 2


# -- router --------------------------------------------------------------------


def test_router_orders_by_ewma():
    router = ReplicaRouter(PlacementMap(2, 2, 2))
    router.record_success(0, 0.5)
    router.record_success(1, 0.1)
    assert router.route(0) == [1, 0]
    assert router.route(1) == [1, 0]
    # Fresh samples move the EWMA: node 0 becomes the fast one.
    for _ in range(20):
        router.record_success(0, 0.01)
    assert router.route(0) == [0, 1]


def test_router_unsampled_node_is_not_starved():
    router = ReplicaRouter(PlacementMap(2, 2, 2))
    router.record_success(0, 0.001)
    # Node 1 has no samples yet; it still routes first so it gets
    # traffic (and therefore samples) instead of being starved.
    assert router.route(0)[0] == 1


def test_router_health_transitions():
    router = ReplicaRouter(PlacementMap(2, 2, 2), failure_threshold=2)
    assert router.is_healthy(0)
    router.record_failure(0)
    assert router.is_healthy(0)  # below threshold
    router.record_failure(0)
    assert not router.is_healthy(0)
    assert router.unhealthy_count() == 1
    # Unhealthy nodes are demoted to last resort, never dropped.
    assert router.route(0) == [1, 0]
    # One success resets the streak.
    router.record_success(0, 0.2)
    assert router.is_healthy(0)
    assert router.unhealthy_count() == 0


def test_router_probe_once_folds_outcomes():
    rtts = {0: 0.01, 1: None}  # node 1's probe fails

    def probe(node_id: int) -> float:
        rtt = rtts[node_id]
        if rtt is None:
            raise NodeUnavailableError("stub", attempts=1, message="down")
        return rtt

    router = ReplicaRouter(
        PlacementMap(2, 2, 2), probe=probe, failure_threshold=1
    )
    router.probe_once()
    assert router.latency(0) == pytest.approx(0.01)
    assert not router.is_healthy(1)
    assert router.route(0) == [0, 1]


def test_router_requires_probe_for_heartbeat():
    router = ReplicaRouter(PlacementMap(2, 2, 2))
    with pytest.raises(ValueError):
        router.probe_once()
    with pytest.raises(ValueError):
        router.start_heartbeat()


# -- failover predicate --------------------------------------------------------


def test_failover_worthy_connection_errors():
    assert failover_worthy(ConnectionLostError("gone"))
    assert failover_worthy(DeadlineExceededError("late"))
    assert failover_worthy(
        NodeUnavailableError("host:1", attempts=3, message="down")
    )


def test_failover_worthy_remote_connection_failures():
    # A node whose *own* halo dependency died answers with a typed
    # error naming the connection failure — worth a different replica.
    assert failover_worthy(
        RemoteCallError("NodeUnavailableError", "unavailable", "halo died")
    )
    assert not failover_worthy(
        RemoteCallError("ValueError", "bad_request", "bad box")
    )


def test_failover_worthy_rejects_logic_errors():
    assert not failover_worthy(ProtocolError("desync"))
    assert not failover_worthy(ValueError("nope"))


# -- partial failure metadata --------------------------------------------------


def test_partial_failure_error_defaults_node_ids():
    error = PartialFailureError(2, "part lost")
    assert error.node_id == 2
    assert error.node_ids == (2,)
    assert error.ranges == ()


def test_partial_failure_error_carries_blast_radius():
    rng = MortonRange(0, 2048)
    error = PartialFailureError(
        0, "all replicas dead", node_ids=(0, 1), ranges=(rng,)
    )
    assert error.node_ids == (0, 1)
    assert error.ranges == (rng,)


# -- pool hygiene --------------------------------------------------------------


class _StubPipe:
    """Just enough of PipelinedConnection for eviction bookkeeping."""

    def __init__(self, last_used: float, in_flight: int = 0) -> None:
        self.last_used = last_used
        self.in_flight = in_flight
        self.usable = True
        self.closed = False

    def close(self) -> None:
        self.closed = True
        self.usable = False


def test_pool_validates_hygiene_options():
    with pytest.raises(ValueError):
        ConnectionPool("127.0.0.1", 1, idle_ttl=0.0)
    with pytest.raises(ValueError):
        ConnectionPool("127.0.0.1", 1, max_probe_failures=0)


def test_pool_probe_failures_evict_everything():
    pool = ConnectionPool("127.0.0.1", 1, max_probe_failures=2)
    pipe = _StubPipe(clock.now())
    pool._pipes = [pipe]
    pool._record_probe_failure()
    assert not pipe.closed and pool.probe_failures == 1
    pool._record_probe_failure()
    assert pipe.closed
    assert pool._pipes == []
    assert pool.probe_failures == 0  # clean slate after the purge


def test_pool_ping_success_resets_probe_failures():
    pool = ConnectionPool("127.0.0.1", 1, max_probe_failures=3)
    pool._ping_once = lambda timeout: 0.001
    pool.probe_failures = 2
    assert pool.ping(1.0) == 0.001
    assert pool.probe_failures == 0


def test_pool_idle_ttl_evicts_stale_pipes(monkeypatch):
    pool = ConnectionPool("127.0.0.1", 1, idle_ttl=10.0)
    now = clock.now()
    stale = _StubPipe(last_used=now - 60.0)
    busy = _StubPipe(last_used=now - 60.0, in_flight=3)
    fresh = _StubPipe(last_used=now)
    pool._pipes = [stale, busy, fresh]

    from repro.net.frame import Deadline

    chosen = pool._pipe(Deadline.after(5.0))
    # The idle-stale pipe is gone; the busy one is exempt (something is
    # still in flight on it) and the fresh one gets the work.
    assert stale.closed
    assert not busy.closed and not fresh.closed
    assert chosen is fresh
    assert stale not in pool._pipes
    pool.close()


# -- replicated halo reads -----------------------------------------------------


class _StubHaloPeer:
    def __init__(self, error=None, atoms=None):
        self.error = error
        self.atoms = atoms or {}
        self.calls = 0

    def serve_halo(self, dataset, field, timestep, ranges, ledger):
        self.calls += 1
        if self.error is not None:
            raise self.error
        return self.atoms


def test_replicated_halo_peer_fails_over():
    dead = _StubHaloPeer(error=ConnectionLostError("gone"))
    live = _StubHaloPeer(atoms={0: b"x"})
    peer = ReplicatedHaloPeer([dead, live])
    assert peer.serve_halo("mhd", "f", 0, [], None) == {0: b"x"}
    assert dead.calls == 1 and live.calls == 1


def test_replicated_halo_peer_propagates_logic_errors():
    bad = _StubHaloPeer(error=ValueError("bad request"))
    live = _StubHaloPeer(atoms={0: b"x"})
    peer = ReplicatedHaloPeer([bad, live])
    with pytest.raises(ValueError):
        peer.serve_halo("mhd", "f", 0, [], None)
    assert live.calls == 0


def test_replicated_halo_peer_exhaustion():
    peers = [
        _StubHaloPeer(error=NodeUnavailableError("a", attempts=1, message="x")),
        _StubHaloPeer(error=ConnectionLostError("y")),
    ]
    with pytest.raises(NodeUnavailableError):
        ReplicatedHaloPeer(peers).serve_halo("mhd", "f", 0, [], None)
    with pytest.raises(ValueError):
        ReplicatedHaloPeer([])


# -- anti-entropy primitives ---------------------------------------------------


def test_chunk_digests_are_stable_and_distinct():
    first = chunk_digests({0: b"abc", 512: b"xyz"})
    assert first == chunk_digests({0: b"abc", 512: b"xyz"})
    assert first[0] != first[512]
    assert all(len(digest) == 16 for digest in first.values())  # 8 bytes hex


def test_diverging_atoms_peer_is_truth():
    local = {0: "aa", 512: "bb"}
    remote = {0: "aa", 512: "CHANGED", 1024: "new"}
    # 512 differs, 1024 is missing locally; local-only atoms are kept.
    assert diverging_atoms(local, remote) == [512, 1024]
    assert diverging_atoms({99: "only-local"}, {}) == []


def test_coalesce_atoms_merges_adjacent():
    v = ATOM_VOLUME
    ranges = coalesce_atoms([0, v, 3 * v, 4 * v, 10 * v])
    assert ranges == [
        MortonRange(0, 2 * v),
        MortonRange(3 * v, 5 * v),
        MortonRange(10 * v, 11 * v),
    ]
    assert coalesce_atoms([]) == []


# -- anti-entropy end to end ---------------------------------------------------


def _start_replicated_pair():
    config = ClusterConfig(
        dataset="mhd",
        side=16,
        timesteps=1,
        seed=11,
        nodes=2,
        cache_capacity_bytes=None,
        replication_factor=2,
    )
    servers = [NodeServer(i, config) for i in range(2)]
    addresses = [f"127.0.0.1:{s.port}" for s in servers]
    for server in servers:
        server.connect_peers(addresses)
        server.load()
        server.start()
    return servers


def test_catch_up_restores_deleted_atoms():
    servers = _start_replicated_pair()
    try:
        rejoiner = servers[0]
        full_range = MortonRange(0, 16**3)
        with rejoiner.node.db.transaction(None) as txn:
            before = rejoiner.node.read_atoms(
                txn, "mhd", "pressure", 0, [full_range], charge=False
            )
        assert before
        # Simulate drift: drop a contiguous pair plus a lone atom.
        victims = sorted(before)[:2] + [sorted(before)[5]]
        table = rejoiner.node.db.table(_atom_table_name("mhd", "pressure"))
        with rejoiner.node.db.transaction() as txn:
            for zindex in victims:
                assert table.delete(txn, (0, zindex))
        chunk_batches: list[int] = []
        report = catch_up(rejoiner, on_chunks=chunk_batches.append)
        assert report.shards == (0, 1)
        assert report.chunks_fetched == len(victims)
        assert report.bytes_fetched > 0
        assert sum(chunk_batches) == len(victims)
        with rejoiner.node.db.transaction(None) as txn:
            after = rejoiner.node.read_atoms(
                txn, "mhd", "pressure", 0, [full_range], charge=False
            )
        assert after == before
        # A second pass finds nothing to move.
        clean = catch_up(rejoiner)
        assert clean.chunks_fetched == 0
        assert clean.atoms_checked == report.atoms_checked
    finally:
        for server in servers:
            server.shutdown()


def test_catch_up_requires_peer_addresses():
    config = ClusterConfig(
        dataset="mhd", side=16, timesteps=1, seed=11, nodes=1
    )
    server = NodeServer(0, config)
    try:
        with pytest.raises(ValueError):
            catch_up(server)
    finally:
        server.shutdown()


# -- cluster config ------------------------------------------------------------


def test_cluster_config_replication_round_trip(tmp_path):
    config = ClusterConfig(
        dataset="mhd",
        side=16,
        timesteps=1,
        seed=11,
        nodes=2,
        replication_factor=2,
    )
    config.save(tmp_path)
    loaded = ClusterConfig.load(tmp_path)
    assert loaded.replication_factor == 2


def test_cluster_config_legacy_default(tmp_path):
    ClusterConfig(dataset="mhd", side=16, timesteps=1, seed=11, nodes=2).save(
        tmp_path
    )
    assert ClusterConfig.load(tmp_path).replication_factor == 1


def test_cluster_config_validates_replication():
    with pytest.raises(ValueError):
        ClusterConfig(
            dataset="mhd",
            side=16,
            timesteps=1,
            seed=11,
            nodes=2,
            replication_factor=3,
        )
    with pytest.raises(ValueError):
        ClusterConfig(
            dataset="mhd",
            side=16,
            timesteps=1,
            seed=11,
            nodes=2,
            replication_factor=0,
        )


def test_mediator_part_failure_names_replicas():
    # The mediator's wrapper turns a transport error's `attempted` node
    # list into machine-readable PartialFailureError metadata.
    from repro.cluster.mediator import Mediator
    from repro.net.errors import NoLiveReplicaError

    class _FailingTransport:
        node_count = 2

        def attach(self, metrics, spec):
            pass

        def dataset_side(self, dataset):
            return 16

        def threshold_part(self, node_id, query, boxes, **kwargs):
            raise NoLiveReplicaError(node_id, (0, 1), "no live replica")

        def close(self):
            pass

    mediator = Mediator(
        nodes=[],
        partitioner=MortonPartitioner(16, 2),
        transport=_FailingTransport(),
        cache_capacity_bytes=None,
    )
    with pytest.raises(PartialFailureError) as excinfo:
        mediator.threshold(
            ThresholdQuery("mhd", "vorticity", 0, 0.5), use_cache=False
        )
    error = excinfo.value
    assert set(error.node_ids) == {0, 1}
    assert error.ranges == (MortonPartitioner(16, 2).node_ranges(error.node_id),)
