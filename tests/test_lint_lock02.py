"""LOCK02: cross-class lock-order cycles and locks held across I/O."""

from repro.lint.checkers import LockOrderWholeProgram

from tests.lint_helpers import load, run_program_checker


def test_bad_fixture_reports_cycle_and_blocking():
    checker = LockOrderWholeProgram()
    diags = run_program_checker(
        checker, load("lock02_bad.py", "repro.net.fixture_lock02")
    )
    messages = [d.message for d in diags]
    assert any("lock-order cycle" in m for m in messages), messages
    cycle = next(m for m in messages if "lock-order cycle" in m)
    assert "Registry._lock" in cycle and "Journal._lock" in cycle
    assert any("held across blocking" in m for m in messages), messages
    blocking = next(m for m in messages if "held across blocking" in m)
    assert "Sender._lock" in blocking


def test_good_fixture_is_clean():
    checker = LockOrderWholeProgram()
    diags = run_program_checker(
        checker, load("lock02_good.py", "repro.net.fixture_lock02")
    )
    assert diags == []


def test_witness_annotates_cycle_edges(tmp_path):
    witness = tmp_path / "witness.json"
    witness.write_text(
        '{"edges": [{"from": "Registry._lock", "to": "Journal._lock"}]}'
    )
    checker = LockOrderWholeProgram()
    checker.load_witness(witness)
    diags = run_program_checker(
        checker, load("lock02_bad.py", "repro.net.fixture_lock02")
    )
    cycle = next(d.message for d in diags if "lock-order cycle" in d.message)
    assert "witnessed at runtime" in cycle
    assert "never witnessed" in cycle


def test_line_suppression_silences_blocking_report():
    from repro.lint import SourceFile

    text = (
        '"""F."""\n\n'
        "import threading\n\n\n"
        "def push(sock, data):\n"
        '    """Sink."""\n'
        "    sock.sendall(data)\n\n\n"
        "class Sender:\n"
        '    """S."""\n\n'
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n\n"
        "    def send(self, sock, data):\n"
        '        """Send."""\n'
        "        with self._lock:\n"
        "            push(sock, data)  # turblint: disable=LOCK02\n"
    )
    source = SourceFile(
        "/synthetic/suppressed.py", "repro.net.fixture_lock02", text=text
    )
    diags = run_program_checker(LockOrderWholeProgram(), source)
    assert diags == []
