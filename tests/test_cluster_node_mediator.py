"""Tests for database nodes, ingest and the mediator's plumbing."""

import numpy as np
import pytest

from repro.cluster import DatabaseNode, Mediator, MortonPartitioner, build_cluster
from repro.costmodel import Category, CostLedger, paper_cluster
from repro.grid import Box
from repro.grid.atoms import atom_ranges_covering
from repro.morton import encode
from repro.simulation import blob_to_array, isotropic_dataset, mhd_dataset


class TestDatabaseNode:
    def test_register_dataset_creates_tables(self, small_mhd):
        node = DatabaseNode(0, paper_cluster())
        node.register_dataset(small_mhd.spec)
        assert "atoms_mhd_velocity" in node.db.table_names
        assert "atoms_mhd_magnetic" in node.db.table_names
        assert "atoms_mhd_pressure" in node.db.table_names

    def test_duplicate_dataset_rejected(self, small_mhd):
        node = DatabaseNode(0, paper_cluster())
        node.register_dataset(small_mhd.spec)
        with pytest.raises(ValueError):
            node.register_dataset(small_mhd.spec)

    def test_unknown_dataset(self):
        node = DatabaseNode(0, paper_cluster())
        with pytest.raises(KeyError):
            node.dataset("nope")

    def test_store_and_read_atoms(self, small_mhd):
        node = DatabaseNode(0, paper_cluster())
        node.register_dataset(small_mhd.spec)
        blob = b"\x00" * (8 * 8 * 8 * 3 * 4)
        with node.db.transaction() as txn:
            node.store_atom(txn, "mhd", "velocity", 0, 0, blob)
            node.store_atom(txn, "mhd", "velocity", 0, 512, blob)
            node.store_atom(txn, "mhd", "velocity", 1, 0, blob)
        with node.db.transaction() as txn:
            atoms = node.read_atoms_for_box(
                txn, "mhd", "velocity", 0, Box((0, 0, 0), (16, 8, 8))
            )
        assert set(atoms) == {0, 512}

    def test_serve_halo_charges_requester_ledger(self, mhd_cluster):
        node = mhd_cluster.nodes[1]
        ledger = CostLedger()
        ranges = atom_ranges_covering(Box((0, 0, 0), (8, 8, 8)), 32)
        node_of_atom = mhd_cluster.partitioner.node_of_atom(0)
        peer = mhd_cluster.nodes[node_of_atom]
        atoms = peer.serve_halo("mhd", "velocity", 0, ranges, ledger)
        assert len(atoms) == 1
        assert ledger[Category.IO] > 0


class TestIngest:
    def test_load_dataset_routes_atoms(self, small_mhd):
        mediator = build_cluster(small_mhd, nodes=4, load=False)
        stored = mediator.load_dataset(small_mhd, timesteps=[0], fields=["velocity"])
        atoms_per_timestep = (32 // 8) ** 3
        assert stored == atoms_per_timestep
        # Every node holds exactly its share.
        for node_id, node in enumerate(mediator.nodes):
            with node.db.transaction() as txn:
                count = node.db.table("atoms_mhd_velocity").count(txn)
            assert count == atoms_per_timestep // 4

    def test_ingested_blobs_decode_to_source(self, small_mhd):
        mediator = build_cluster(small_mhd, nodes=2, load=False)
        mediator.load_dataset(small_mhd, timesteps=[0], fields=["magnetic"])
        source = small_mhd.field_array("magnetic", 0)
        node = mediator.nodes[0]
        with node.db.transaction() as txn:
            row = node.db.table("atoms_mhd_magnetic").get(txn, (0, 0))
        block = blob_to_array(row["blob"], 3)
        assert np.array_equal(block, source[:8, :8, :8])

    def test_side_mismatch_rejected(self, small_mhd):
        other = isotropic_dataset(side=16)
        mediator = build_cluster(small_mhd, nodes=2, load=False)
        with pytest.raises(ValueError):
            mediator.load_dataset(other)


class TestMediatorPlumbing:
    def test_node_count_must_match_partitioner(self, small_mhd):
        nodes = [DatabaseNode(i, paper_cluster()) for i in range(2)]
        with pytest.raises(ValueError):
            Mediator(nodes, MortonPartitioner(32, 4))

    def test_query_box_validation(self, mhd_cluster):
        from repro.core import ThresholdQuery

        query = ThresholdQuery(
            "mhd", "vorticity", 0, 1.0, box=Box((0, 0, 0), (40, 8, 8))
        )
        with pytest.raises(ValueError):
            mhd_cluster.threshold(query)

    def test_cache_disabled_cluster(self, small_mhd):
        mediator = build_cluster(small_mhd, nodes=2, cache_capacity_bytes=None)
        assert all(cache is None for cache in mediator.caches)
        from repro.core import ThresholdQuery

        result = mediator.threshold(ThresholdQuery("mhd", "vorticity", 0, 2.0))
        assert len(result) > 0
        assert result.cache_hits == 0

    def test_drop_cache_entries(self, mhd_cluster):
        from repro.core import ThresholdQuery

        mhd_cluster.threshold(ThresholdQuery("mhd", "vorticity", 0, 2.0))
        dropped = mhd_cluster.drop_cache_entries("mhd", "vorticity", 0)
        assert dropped == 8  # 4 nodes x 2 octant pieces each

    def test_clear_caches(self, mhd_cluster):
        from repro.core import ThresholdQuery

        mhd_cluster.threshold(ThresholdQuery("mhd", "vorticity", 0, 2.0))
        mhd_cluster.threshold(ThresholdQuery("mhd", "magnetic", 1, 1.0))
        assert mhd_cluster.clear_caches() == 16
