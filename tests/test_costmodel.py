"""Tests for the cost ledger and device models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costmodel import (
    Category,
    ClusterSpec,
    CostLedger,
    CpuSpec,
    HddArraySpec,
    NetworkSpec,
    SsdSpec,
    paper_cluster,
)


class TestCostLedger:
    def test_starts_empty(self):
        ledger = CostLedger()
        assert ledger.total == 0.0
        assert all(ledger[cat] == 0.0 for cat in Category)

    def test_charge_accumulates(self):
        ledger = CostLedger()
        ledger.charge(Category.IO, 1.5)
        ledger.charge(Category.IO, 0.5)
        assert ledger[Category.IO] == 2.0
        assert ledger.total == 2.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge(Category.IO, -1.0)

    def test_serial_composition_sums(self):
        a = CostLedger({Category.IO: 1.0, Category.COMPUTE: 2.0})
        b = CostLedger({Category.IO: 3.0})
        a.add(b)
        assert a[Category.IO] == 4.0
        assert a[Category.COMPUTE] == 2.0

    def test_parallel_composition_takes_max_per_category(self):
        a = CostLedger({Category.IO: 1.0, Category.COMPUTE: 5.0})
        b = CostLedger({Category.IO: 3.0, Category.COMPUTE: 2.0})
        combined = CostLedger.parallel([a, b])
        assert combined[Category.IO] == 3.0
        assert combined[Category.COMPUTE] == 5.0

    def test_parallel_of_nothing_is_zero(self):
        assert CostLedger.parallel([]).total == 0.0

    def test_scaled(self):
        ledger = CostLedger({Category.IO: 2.0}).scaled(2.5)
        assert ledger[Category.IO] == 5.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            CostLedger().scaled(-1)

    def test_copy_is_independent(self):
        a = CostLedger({Category.IO: 1.0})
        b = a.copy()
        b.charge(Category.IO, 1.0)
        assert a[Category.IO] == 1.0

    def test_breakdown_names(self):
        bd = CostLedger({Category.CACHE_LOOKUP: 0.1}).breakdown()
        assert bd["cache_lookup"] == 0.1
        assert set(bd) == {c.value for c in Category}

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=8))
    def test_parallel_never_exceeds_serial(self, times):
        branches = [CostLedger({Category.IO: t}) for t in times]
        par = CostLedger.parallel(branches)
        assert par[Category.IO] == max(times)
        assert par[Category.IO] <= sum(times)


class TestSsd:
    def test_read_time_scales_with_bytes(self):
        ssd = SsdSpec(read_mib_s=100.0, latency_s=0.0)
        assert ssd.read_time(100 * (1 << 20)) == pytest.approx(1.0)

    def test_latency_per_seek(self):
        ssd = SsdSpec(read_mib_s=100.0, latency_s=0.001)
        assert ssd.read_time(0, seeks=5) == pytest.approx(0.005)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SsdSpec(read_mib_s=0)


class TestHddArray:
    def test_single_stream_base_rate(self):
        hdd = HddArraySpec(stream_mib_s=50.0, seek_s=0.0)
        assert hdd.read_time(50 * (1 << 20)) == pytest.approx(1.0)

    def test_parallel_gain_saturates(self):
        hdd = HddArraySpec(stream_mib_s=50.0, parallel_gain=0.8)
        t1 = hdd.aggregate_throughput(1)
        t2 = hdd.aggregate_throughput(2)
        t8 = hdd.aggregate_throughput(8)
        assert t1 < t2 < t8
        assert t8 < t1 * (1 + 0.8)  # never exceeds the asymptote

    def test_two_streams_gain(self):
        hdd = HddArraySpec(stream_mib_s=100.0, parallel_gain=0.8)
        assert hdd.aggregate_throughput(2) == pytest.approx(140.0)

    def test_read_time_decreases_sublinearly_with_streams(self):
        hdd = HddArraySpec(seek_s=0.0)
        nbytes = 1 << 30
        t1 = hdd.read_time(nbytes, streams=1)
        t4 = hdd.read_time(nbytes, streams=4)
        assert t4 < t1
        assert t4 > t1 / 4  # far from linear speedup: shared disks

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            HddArraySpec().read_time(1, streams=0)

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            HddArraySpec(parallel_gain=1.5)


class TestNetwork:
    def test_inflation_applies_to_bytes(self):
        net = NetworkSpec(bandwidth_mib_s=1.0, latency_s=0.0, inflation=5.0)
        assert net.transfer_time(1 << 20) == pytest.approx(5.0)

    def test_latency_per_round_trip(self):
        net = NetworkSpec(bandwidth_mib_s=1000.0, latency_s=0.1)
        assert net.transfer_time(0, round_trips=3) == pytest.approx(0.3)

    def test_rejects_deflation(self):
        with pytest.raises(ValueError):
            NetworkSpec(bandwidth_mib_s=1.0, inflation=0.5)


class TestCpu:
    def test_compute_time(self):
        cpu = CpuSpec(units_per_s=1e6)
        assert cpu.compute_time(2_000_000, 1.0) == pytest.approx(2.0)

    def test_heavier_kernels_cost_more(self):
        cpu = CpuSpec()
        assert cpu.compute_time(1000, 1.8) > cpu.compute_time(1000, 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CpuSpec().compute_time(-1, 1.0)


class TestClusterSpec:
    def test_paper_cluster_defaults(self):
        spec = paper_cluster()
        assert spec.hdd.arrays == 4
        assert spec.wan.inflation > 1.0

    def test_with_overrides(self):
        spec = paper_cluster().with_overrides(point_record_bytes=32)
        assert spec.point_record_bytes == 32
        assert paper_cluster().point_record_bytes == 20

    def test_calibration_single_process_io_near_paper(self):
        """One process reads ~3 GiB (one node's 1024^3 share) in ~2 min."""
        spec = paper_cluster()
        node_share = (1024**3 // 4) * 3 * 4  # points x 3 comps x float32
        t = spec.hdd.read_time(node_share, seeks=10, streams=1)
        assert 90 <= t <= 180  # Fig. 8 I/O-only bar at 1 process (~130 s)

    def test_calibration_compute_near_paper(self):
        """Vorticity kernel over one node's share: ~2 min single-process."""
        spec = paper_cluster()
        t = spec.cpu.compute_time(1024**3 // 4, 1.0)
        assert 90 <= t <= 180


def test_cluster_spec_is_immutable():
    spec = ClusterSpec()
    with pytest.raises(AttributeError):
        spec.point_record_bytes = 10
