"""Build a landmark database of the most intense events (paper §7).

Threshold queries find the intense points of each timestep; friends-of-
friends groups them into events; and the landmark database persists each
event's bounding box, peak and statistics, so later sessions can ask
"the strongest vorticity events anywhere in the dataset" without
re-scanning a single timestep.

Run with:  python examples/landmark_database.py
"""

from repro import (
    Box,
    LandmarkDatabase,
    ThresholdQuery,
    build_cluster,
    isotropic_dataset,
    norm_rms,
)
from repro.harness.common import ground_truth_norm


def main() -> None:
    dataset = isotropic_dataset(side=64, timesteps=4)
    mediator = build_cluster(dataset, nodes=4)

    # The landmark tables live next to node 0's cache tables, on SSD.
    landmarks = LandmarkDatabase(mediator.nodes[0].db)

    print("Scanning all timesteps for events above 6 x RMS vorticity...")
    for timestep in range(dataset.spec.timesteps):
        rms = norm_rms(ground_truth_norm(dataset, "vorticity", timestep))
        query = ThresholdQuery(
            "isotropic", "vorticity", timestep, 6.0 * rms
        )
        result = mediator.threshold(query, processes=4)
        ids = landmarks.record_threshold_result(
            query, result, domain_side=dataset.spec.side, min_size=3
        )
        print(f"  t={timestep}: {len(result):5d} points -> "
              f"{len(ids)} landmarks recorded")

    print(f"\nlandmark database now holds {landmarks.count()} events\n")

    print("The five most intense vorticity events in the whole dataset:")
    for lm in landmarks.most_intense("isotropic", "vorticity", k=5):
        print(f"  t={lm.timestep}  peak {lm.peak_value:7.2f} at "
              f"{lm.peak_location}  ({lm.point_count} points, "
              f"box {lm.box.lo}->{lm.box.hi})")

    # Spatial queries: what happened in this corner of the domain?
    corner = Box((0, 0, 0), (32, 32, 32))
    nearby = landmarks.in_region(corner)
    print(f"\n{len(nearby)} landmarks intersect the lower corner octant")

    # Follow the strongest event back to the raw data: a subsequent
    # threshold query over just its bounding box is nearly free.
    best = landmarks.most_intense("isotropic", "vorticity", k=1)[0]
    followup = mediator.threshold(
        ThresholdQuery("isotropic", "vorticity", best.timestep,
                       best.threshold, box=best.box)
    )
    print(f"\nre-examining the strongest event's box: {len(followup)} points "
          f"in {followup.elapsed:.2f} sim s "
          f"(cache hits {followup.cache_hits}/{followup.nodes})")


if __name__ == "__main__":
    main()
