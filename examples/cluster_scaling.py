"""How the evaluation scales with processes and nodes (paper Fig. 7/8).

Runs the cold-cache vorticity query with varying processes-per-node and
node counts, printing the speedup curves and the total-vs-I/O-only
comparison — a miniature of the paper's scaling study.

Run with:  python examples/cluster_scaling.py
"""

from repro import ThresholdQuery, build_cluster, mhd_dataset
from repro.costmodel import Category, paper_scale_spec
from repro.harness.common import threshold_levels

SIDE = 64


def cold_query(mediator, query, processes, io_only=False):
    mediator.drop_cache_entries(query.dataset, query.field, query.timestep)
    mediator.drop_page_caches()
    return mediator.threshold(
        query, processes=processes, use_cache=False, io_only=io_only
    )


def main() -> None:
    dataset = mhd_dataset(side=SIDE, timesteps=2)
    spec = paper_scale_spec(SIDE)  # charge paper-scale (1024^3) seconds
    threshold = threshold_levels(dataset, "vorticity", 0)["medium"]
    query = ThresholdQuery("mhd", "vorticity", 0, threshold)

    print("scale-up: processes per node (4-node cluster)")
    mediator = build_cluster(dataset, nodes=4, spec=spec,
                             sequential_scatter=True)
    base = None
    for processes in (1, 2, 4, 8):
        result = cold_query(mediator, query, processes)
        io_only = cold_query(mediator, query, processes, io_only=True)
        base = base or result.elapsed
        print(f"  P={processes}: total {result.elapsed:6.1f} s, "
              f"I/O-only {io_only.elapsed:6.1f} s, "
              f"speedup {base / result.elapsed:.2f}x")

    print("\nscale-out: cluster size (1 process per node)")
    base = None
    for nodes in (1, 2, 4, 8):
        mediator = build_cluster(dataset, nodes=nodes, spec=spec,
                                 sequential_scatter=True)
        result = cold_query(mediator, query, 1)
        server = result.elapsed - result.ledger[Category.MEDIATOR_USER]
        base = base or server
        print(f"  N={nodes}: server time {server:6.1f} s, "
              f"speedup {base / server:.2f}x")


if __name__ == "__main__":
    main()
