"""MHD: locate the strongest electric currents (paper Sec. 3).

"In MHD, finding the locations with largest values for the electric
current can lead to new insights into the development of the most
intense reconnection events."  The electric current is the curl of the
magnetic field — the same kernel as vorticity on a different source
field.  This example uses the PDF query to pick a sensible threshold
(the workflow the paper recommends when a threshold is too low), then
compares with a top-k query.

Run with:  python examples/mhd_current_sheets.py
"""

import numpy as np

from repro import (
    PdfQuery,
    ThresholdQuery,
    ThresholdTooLowError,
    TopKQuery,
    build_cluster,
    mhd_dataset,
)


def main() -> None:
    print("Loading MHD dataset (64^3)...")
    dataset = mhd_dataset(side=64, timesteps=2)
    mediator = build_cluster(dataset, nodes=4)

    # A threshold set too low is rejected with a helpful error.
    try:
        mediator.threshold(
            ThresholdQuery("mhd", "electric_current", 0, 0.01),
            max_points=10_000,
        )
    except ThresholdTooLowError as error:
        print(f"service refused a too-low threshold:\n  {error}\n")

    # So examine the value distribution first, as the paper suggests.
    pdf = mediator.pdf(
        PdfQuery("mhd", "electric_current", 0,
                 tuple(np.linspace(0.0, 40.0, 9))),
        processes=4,
    )
    print("PDF of |current| (pick a threshold from the tail):")
    edges = pdf.bin_edges
    for i, count in enumerate(pdf.counts):
        hi = f"{edges[i + 1]:5.1f}" if i + 1 < len(edges) else "  inf"
        print(f"  [{edges[i]:5.1f}, {hi}) : {int(count):8d}")

    # Choose the lowest bin edge keeping at most ~500 points.
    cumulative = np.cumsum(pdf.counts[::-1])[::-1]
    tail_bins = [i for i, c in enumerate(cumulative) if c <= 500]
    threshold = edges[tail_bins[0]] if tail_bins else edges[-1]
    print(f"\nthresholding at {threshold:.1f}...")
    result = mediator.threshold(
        ThresholdQuery("mhd", "electric_current", 0, float(threshold)),
        processes=4,
    )
    print(f"{len(result)} current-sheet points in "
          f"{result.elapsed:.1f} simulated s")

    # Cross-check with a top-k query.
    top = mediator.topk(TopKQuery("mhd", "electric_current", 0, k=10))
    print("\ntop-10 |current| locations:")
    for (x, y, z), value in zip(top.coordinates().tolist(),
                                top.values.tolist()):
        print(f"  ({x:3d}, {y:3d}, {z:3d})  |j| = {value:.2f}")
    assert set(np.round(top.values, 6)) <= set(
        np.round(result.values, 6)
    ) or top.values.min() >= result.values.min()


if __name__ == "__main__":
    main()
