"""Drive the service through its web-service front door (paper Fig. 1).

Every interaction is a plain request dictionary and a serializable
response — the shape of the JHTDB's SOAP calls — including the error
responses users get for bad thresholds.

Run with:  python examples/webservice_demo.py
"""

import json

from repro import build_cluster, mhd_dataset
from repro.cluster.webservice import WebService


def call(service, request):
    """Issue one call and pretty-print the (abridged) response."""
    response = service.handle(request)
    shown = dict(response)
    if "points" in shown and len(shown["points"]) > 3:
        shown["points"] = shown["points"][:3] + ["..."]
    print(f"> {request['method']}")
    print(json.dumps(shown, indent=2, default=str)[:600])
    print()
    return response


def main() -> None:
    dataset = mhd_dataset(side=64, timesteps=2)
    mediator = build_cluster(dataset, nodes=4)
    service = WebService(mediator, max_points=5000)

    call(service, {"method": "ListDatasets"})
    call(service, {"method": "ListFields"})

    # Too low a threshold: the documented error response (paper Sec. 4).
    call(service, {
        "method": "GetThreshold", "dataset": "mhd", "field": "vorticity",
        "timestep": 0, "threshold": 0.1,
    })

    # Examine the PDF first, as the error suggests.
    pdf = call(service, {
        "method": "GetPdf", "dataset": "mhd", "field": "vorticity",
        "timestep": 0, "bin_edges": [0.0, 5.0, 10.0, 15.0, 20.0, 30.0],
    })
    threshold = pdf["bin_edges"][-2]

    # Now a sensible threshold query, twice: the repeat hits the cache.
    call(service, {
        "method": "GetThreshold", "dataset": "mhd", "field": "vorticity",
        "timestep": 0, "threshold": threshold,
    })
    call(service, {
        "method": "GetThreshold", "dataset": "mhd", "field": "vorticity",
        "timestep": 0, "threshold": threshold,
    })

    # Register a new derived field declaratively and query it at once.
    call(service, {
        "method": "RegisterField", "name": "current",
        "expression": "norm(curl(magnetic))",
    })
    call(service, {
        "method": "GetThreshold", "dataset": "mhd", "field": "current",
        "timestep": 0, "threshold": threshold,
    })

    # Batch two velocity-derived queries over one shared scan.
    call(service, {
        "method": "GetBatchThreshold",
        "queries": [
            {"dataset": "mhd", "field": "vorticity", "timestep": 1,
             "threshold": threshold},
            {"dataset": "mhd", "field": "q_criterion", "timestep": 1,
             "threshold": threshold ** 2},
        ],
    })

    # Service-level statistics (paper Sec. 5.2's hit-ratio observation).
    call(service, {"method": "GetStatistics"})


if __name__ == "__main__":
    main()
