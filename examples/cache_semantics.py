"""A tour of the semantic cache: dominance, containment, LRU, isolation.

Shows exactly when a threshold query is answered from the cache and when
it must fall back to the raw data (paper Sec. 4, Algorithm 1).

Run with:  python examples/cache_semantics.py
"""

from repro import Box, ThresholdQuery, build_cluster, mhd_dataset
from repro.harness.common import ground_truth_norm, threshold_levels


def show(label: str, result) -> None:
    state = f"{result.cache_hits}/{result.nodes} node hits"
    print(f"  {label:<44s} {len(result):6d} points  "
          f"{result.elapsed:8.2f} sim s  ({state})")


def main() -> None:
    dataset = mhd_dataset(side=64, timesteps=2)
    mediator = build_cluster(dataset, nodes=4)
    levels = threshold_levels(dataset, "vorticity", 0)
    low, medium, high = levels["low"], levels["medium"], levels["high"]

    print("1) threshold dominance")
    show("cold query at the medium threshold",
         mediator.threshold(ThresholdQuery("mhd", "vorticity", 0, medium)))
    show("higher threshold: dominated -> cache hit",
         mediator.threshold(ThresholdQuery("mhd", "vorticity", 0, high)))
    show("lower threshold: NOT dominated -> recompute",
         mediator.threshold(ThresholdQuery("mhd", "vorticity", 0, low)))
    show("same lower threshold again -> cache hit",
         mediator.threshold(ThresholdQuery("mhd", "vorticity", 0, low)))

    print("\n2) spatial containment")
    sub_box = Box((8, 8, 8), (40, 40, 40))
    show("sub-box of the cached region -> cache hit",
         mediator.threshold(
             ThresholdQuery("mhd", "vorticity", 0, low, box=sub_box)))

    print("\n3) different query keys never alias")
    show("different timestep -> miss",
         mediator.threshold(ThresholdQuery("mhd", "vorticity", 1, low)))
    show("different field -> miss",
         mediator.threshold(ThresholdQuery("mhd", "magnetic", 0, 1.0)))

    print("\n4) LRU eviction under a byte budget")
    tiny_dataset = mhd_dataset(side=32, timesteps=2)
    tiny = build_cluster(tiny_dataset, nodes=2, cache_capacity_bytes=1600)
    tiny_levels = threshold_levels(tiny_dataset, "vorticity", 0)
    q0 = ThresholdQuery("mhd", "vorticity", 0, tiny_levels["low"])
    q1 = ThresholdQuery("mhd", "vorticity", 1, tiny_levels["low"])
    show("query t=0 (fills the tiny cache)", tiny.threshold(q0))
    show("query t=1 (evicts t=0 where space is needed)", tiny.threshold(q1))
    evicted = tiny.threshold(q0)
    show("query t=0 again -> miss on evicted nodes", evicted)
    assert evicted.cache_hits < evicted.nodes, "expected at least one eviction"


if __name__ == "__main__":
    main()
