"""Quickstart: stand up a cluster, run a threshold query, hit the cache.

Run with:  python examples/quickstart.py
"""

from repro import (
    ThresholdQuery,
    TurbulenceClient,
    build_cluster,
    mhd_dataset,
    threshold_for_fraction,
)
from repro.costmodel import paper_scale_spec
from repro.harness.common import ground_truth_norm


def main() -> None:
    # A synthetic stand-in for the JHTDB MHD dataset: 64^3 grid, 2 steps.
    # paper_scale_spec charges simulated seconds as if the grid were the
    # production 1024^3, so timings compare directly with the paper.
    print("Generating synthetic MHD turbulence and loading the cluster...")
    dataset = mhd_dataset(side=64, timesteps=2)
    mediator = build_cluster(dataset, nodes=4, spec=paper_scale_spec(64))
    client = TurbulenceClient(mediator)

    # Pick a threshold keeping ~0.1% of points (the paper's regime).
    norm = ground_truth_norm(dataset, "vorticity", 0)
    threshold = threshold_for_fraction(norm, 1e-3)
    print(f"Thresholding vorticity at {threshold:.2f} "
          f"(keeps ~0.1% of {64 ** 3} points)\n")

    # First query: evaluated from the raw data, result cached per node.
    cold = client.get_threshold("mhd", "vorticity", 0, threshold)
    print(f"cold query : {len(cold):6d} points in "
          f"{cold.elapsed:8.2f} simulated s  "
          f"(cache hits: {cold.cache_hits}/{cold.nodes} nodes)")

    # Same query again: answered from the semantic cache.
    warm = client.get_threshold("mhd", "vorticity", 0, threshold)
    print(f"warm query : {len(warm):6d} points in "
          f"{warm.elapsed:8.2f} simulated s  "
          f"(cache hits: {warm.cache_hits}/{warm.nodes} nodes)")
    print(f"cache speedup: {cold.elapsed / warm.elapsed:.0f}x\n")

    # A higher threshold is *dominated* by the cached entry: still a hit.
    higher = client.get_threshold("mhd", "vorticity", 0, threshold * 1.5)
    print(f"higher threshold ({threshold * 1.5:.2f}): {len(higher)} points, "
          f"cache hits {higher.cache_hits}/{higher.nodes} "
          f"in {higher.elapsed:.2f} simulated s")

    # Where are the most intense points?
    coords = cold.coordinates()
    peak = int(cold.values.argmax())
    x, y, z = (int(c) for c in coords[peak])
    print(f"\nmost intense point: grid ({x}, {y}, {z}), "
          f"|vorticity| = {cold.values[peak]:.2f}")


if __name__ == "__main__":
    main()
