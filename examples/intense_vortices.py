"""Find and track intense vortices across time (paper Figs. 3-4).

Thresholds every timestep of an isotropic-turbulence dataset at a
multiple of the RMS vorticity, clusters the returned points with a 4-D
friends-of-friends pass, and reports how the most intense "worm"
develops through time.

Run with:  python examples/intense_vortices.py
"""

import numpy as np

from repro import (
    ThresholdQuery,
    build_cluster,
    friends_of_friends_4d,
    isotropic_dataset,
    norm_rms,
)
from repro.harness.common import ground_truth_norm


def main() -> None:
    print("Loading isotropic turbulence (64^3, 4 timesteps)...")
    dataset = isotropic_dataset(side=64, timesteps=4)
    mediator = build_cluster(dataset, nodes=4)

    all_t, all_xyz, all_val = [], [], []
    for timestep in range(dataset.spec.timesteps):
        rms = norm_rms(ground_truth_norm(dataset, "vorticity", timestep))
        threshold = 6.0 * rms
        result = mediator.threshold(
            ThresholdQuery("isotropic", "vorticity", timestep, threshold),
            processes=4,
        )
        print(f"t={timestep}: {len(result):5d} points above "
              f"6 x RMS ({threshold:.1f}) in {result.elapsed:.1f} sim s")
        if len(result):
            all_t.append(np.full(len(result), timestep))
            all_xyz.append(result.coordinates())
            all_val.append(result.values)

    if not all_t:
        print("no intense events found; try a lower multiple")
        return

    clusters = friends_of_friends_4d(
        np.concatenate(all_t),
        np.concatenate(all_xyz),
        np.concatenate(all_val),
        side=dataset.spec.side,
        linking_length=2,
        min_size=2,
    )
    print(f"\n{len(clusters)} space-time clusters (worms) of size >= 2:")
    for rank, cluster in enumerate(clusters[:5], start=1):
        print(f"  #{rank}: {cluster.size:4d} points, "
              f"alive over timesteps {cluster.timesteps}, "
              f"peak |vorticity| {cluster.peak_value:.1f}")

    most_intense = max(clusters, key=lambda c: c.peak_value)
    print(f"\nThe most intense event lives in a cluster of "
          f"{most_intense.size} points spanning timesteps "
          f"{most_intense.timesteps} -- the 4-D structure the paper's "
          "Fig. 3 visualises.")

    # Track each event through time: drift, growth, peak history.
    from repro import track_events

    tracks = track_events(
        np.concatenate(all_t),
        np.concatenate(all_xyz),
        np.concatenate(all_val),
        side=dataset.spec.side,
        linking_length=2,
        min_size=2,
    )
    print("\nevent tracks (most intense first):")
    for track in tracks[:3]:
        sizes = " -> ".join(str(s.size) for s in track.snapshots)
        print(f"  t={track.birth}..{track.death}  sizes {sizes}  "
              f"peak {track.peak_value:.1f} at t={track.peak_timestep}  "
              f"drift {track.drift(dataset.spec.side):.1f} cells/step")


if __name__ == "__main__":
    main()
