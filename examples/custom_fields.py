"""Define new derived fields declaratively — no stored procedure needed.

The production JHTDB needed hand-written CLR code for every derived
field (paper §7 lists this as the main extensibility pain point, and
proposes "declarative ... interfaces that will allow users to combine
existing building blocks").  Here a one-line expression registers a new
thresholdable field on the live service.

Run with:  python examples/custom_fields.py
"""

import numpy as np

from repro import (
    ThresholdQuery,
    TopKQuery,
    build_cluster,
    default_registry,
    mhd_dataset,
)


def main() -> None:
    registry = default_registry()

    # Users combine building blocks: differential operators, invariants,
    # norms and arithmetic.  Halo width and compute cost are inferred.
    registry.register_expression("my_vorticity", "norm(curl(velocity))")
    registry.register_expression("current_density", "norm(curl(magnetic))")
    registry.register_expression("combined_invariant",
                                 "abs(q(velocity)) + abs(r(velocity))")
    registry.register_expression("double_curl",
                                 "norm(curl(curl(velocity)))")
    registry.register_expression("pressure_gradient",
                                 "norm(grad(pressure))")

    print("Registered custom fields:",
          [n for n in registry.names() if n not in default_registry().names()])

    dataset = mhd_dataset(side=64, timesteps=2)
    mediator = build_cluster(dataset, nodes=4, registry=registry)

    # The expression field behaves exactly like a built-in: distributed
    # evaluation, halo exchange, semantic caching.
    builtin = mediator.threshold(
        ThresholdQuery("mhd", "vorticity", 0, 12.0), use_cache=False
    )
    custom = mediator.threshold(
        ThresholdQuery("mhd", "my_vorticity", 0, 12.0), use_cache=False
    )
    assert np.array_equal(builtin.zindexes, custom.zindexes)
    print(f"\n'my_vorticity' matches the built-in vorticity: "
          f"{len(custom)} points")

    for field in ("current_density", "combined_invariant",
                  "double_curl", "pressure_gradient"):
        derived = registry.get(field)
        # Pick a threshold keeping roughly the strongest 0.1%.
        probe = mediator.topk(TopKQuery("mhd", field, 0, k=300))
        threshold = float(probe.values[-1])
        result = mediator.threshold(ThresholdQuery("mhd", field, 0, threshold))
        print(f"{field:20s} halo={derived.halo(4)} "
              f"units/pt={derived.units_per_point:.2f}  "
              f"{len(result):4d} points >= {threshold:.3g} "
              f"in {result.elapsed:.1f} sim s")

    # Cache hits work for expression fields too.
    probe = mediator.topk(TopKQuery("mhd", "current_density", 0, k=300))
    again = mediator.threshold(
        ThresholdQuery("mhd", "current_density", 0, float(probe.values[-1]))
    )
    print(f"\nrepeat current_density query: cache hits "
          f"{again.cache_hits}/{again.nodes}")


if __name__ == "__main__":
    main()
