"""Benchmark + reproduction of Fig. 7(a): scale-up with processes/node."""

import pytest

from repro.core import ThresholdQuery
from repro.harness import fig7
from repro.harness.common import threshold_levels


@pytest.fixture(scope="module")
def report(config, save_report):
    out = fig7.run_scaleup(config)
    save_report("fig7a_scaleup", out)
    return out


def _speedups(report, column):
    return [float(row[column].rstrip("x")) for row in report.rows]


def test_scaleup_monotone_then_flat(report):
    """Paper: ~2x at 2 procs, ~2.6x at 4, little further gain at 8."""
    for column in (1, 2, 3):  # low / medium / high columns
        s1, s2, s4, s8 = _speedups(report, column)
        assert s1 == 1.0
        assert 1.3 <= s2 <= 2.2
        assert s2 < s4
        assert s8 <= s4 * 1.25  # flattening: going 4 -> 8 buys little


def test_scaleup_far_from_linear(report):
    """I/O does not parallelise: speedup at 8 procs is nowhere near 8x."""
    for column in (1, 2, 3):
        assert _speedups(report, column)[3] < 4.0


def test_benchmark_four_process_query(report, benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    threshold = threshold_levels(dataset, "vorticity", 0)["medium"]
    query = ThresholdQuery("mhd", "vorticity", 0, threshold)

    def run():
        mediator.drop_cache_entries("mhd", "vorticity", 0)
        mediator.drop_page_caches()
        return mediator.threshold(query, processes=4, use_cache=False)

    result = benchmark(run)
    assert len(result) > 0
