"""Hot-path microbenchmark: chunked cache vs. seed row-per-point.

Measures wall-clock ops/sec (points or atoms per second) for the three
operations the columnar fast path rewrote:

* ``cache_store`` — persisting a 100k-point threshold result into the
  semantic cache (chunked ``insert_many`` vs. one MVCC row per point);
* ``cache_lookup_hit`` — serving that result back from the cache;
* ``atom_scan`` — a clustered read of one timestep's 8^3 atom blobs
  through ``Table.scan_column_batches``.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_hotpath.py

Writes ``BENCH_hotpath.json`` at the repo root with both the chunked
and the legacy numbers (so the >=10x claim is auditable) and exits
non-zero when chunked cache-store ops/sec falls below the floor in
``benchmarks/hotpath_floor.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

from repro.core.cache import SemanticCache
from repro.costmodel import Category
from repro.costmodel.devices import HddArraySpec, SsdSpec
from repro.grid import Box
from repro.morton import encode_array
from repro.obs.clock import Stopwatch, unix_now
from repro.storage import (
    Column,
    ColumnType,
    Database,
    StorageDevice,
    TableSchema,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FLOOR_PATH = Path(__file__).resolve().parent / "hotpath_floor.json"
OUT_PATH = REPO_ROOT / "BENCH_hotpath.json"

#: Version of the report's key set; bump when keys are added,
#: renamed or removed so downstream dashboards can detect layout
#: changes.
SCHEMA_VERSION = 2

POINTS = 100_000
SIDE = 64  # domain side holding >= POINTS distinct grid cells
ATOMS = 512  # atoms per raw-scan round
ATOM_BYTES = 8**3 * 4


def make_point_set(count: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    cells = rng.choice(SIDE**3, size=count, replace=False)
    x, y, z = cells // (SIDE * SIDE), (cells // SIDE) % SIDE, cells % SIDE
    zindexes = np.sort(encode_array(x, y, z))
    values = rng.uniform(1.0, 10.0, count)
    return zindexes, values


def make_db(name: str) -> Database:
    db = Database(name)
    db.add_device(StorageDevice("hdd", HddArraySpec(), Category.IO))
    db.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))
    return db


BOX = Box((0, 0, 0), (SIDE,) * 3)


# -- chunked (current) implementation ---------------------------------------


def bench_chunked(zindexes: np.ndarray, values: np.ndarray) -> dict[str, float]:
    db = make_db("hotpath")
    cache = SemanticCache(db, capacity_bytes=1 << 30, point_record_bytes=20)
    with Stopwatch() as store:
        with db.transaction() as txn:
            cache.store(txn, "mhd", "f", 0, BOX, 0.0, zindexes, values)
    with Stopwatch() as lookup:
        with db.transaction() as txn:
            hit = cache.lookup(txn, "mhd", "f", 0, BOX, 0.0)
    assert hit.hit and len(hit.zindexes) == len(zindexes)
    return {"store_s": store.elapsed, "lookup_s": lookup.elapsed}


# -- seed row-per-point reference --------------------------------------------
#
# A faithful inline copy of the seed's cacheData layout: one MVCC table
# row per matching point, read back as per-row dicts and argsorted (the
# code this PR replaced; kept here so the speedup stays measurable).


def bench_legacy(zindexes: np.ndarray, values: np.ndarray) -> dict[str, float]:
    db = make_db("hotpath-legacy")
    db.create_table(
        TableSchema(
            "legacyData",
            (
                Column("ordinal", ColumnType.INTEGER),
                Column("zindex", ColumnType.BIGINT),
                Column("value", ColumnType.FLOAT),
            ),
            primary_key=("ordinal", "zindex"),
        ),
        device="ssd",
    )
    table = db.table("legacyData")
    with Stopwatch() as store:
        with db.transaction() as txn:
            for zindex, value in zip(zindexes.tolist(), values.tolist()):
                table.insert(
                    txn, {"ordinal": 1, "zindex": zindex, "value": value}
                )
    with Stopwatch() as lookup:
        with db.transaction() as txn:
            rows = list(table.scan(txn))
            got_z = np.array([row["zindex"] for row in rows], dtype=np.uint64)
            got_v = np.array([row["value"] for row in rows])
            order = np.argsort(got_z, kind="stable")
            got_z, got_v = got_z[order], got_v[order]
    assert np.array_equal(got_z, zindexes)
    assert np.allclose(got_v, values)
    return {"store_s": store.elapsed, "lookup_s": lookup.elapsed}


# -- raw atom scan -----------------------------------------------------------


def bench_atom_scan() -> dict[str, float]:
    db = make_db("hotpath-atoms")
    db.create_table(
        TableSchema(
            "atoms",
            (
                Column("timestep", ColumnType.INTEGER),
                Column("zindex", ColumnType.BIGINT),
                Column("blob", ColumnType.BLOB),
            ),
            primary_key=("timestep", "zindex"),
            logged=False,
        ),
        device="hdd",
    )
    table = db.table("atoms")
    blob = bytes(ATOM_BYTES)
    with db.transaction() as txn:
        table.insert_many(
            txn,
            [
                {"timestep": 0, "zindex": i * 512, "blob": blob}
                for i in range(ATOMS)
            ],
        )
    with Stopwatch() as scan:
        with db.transaction() as txn:
            seen = 0
            for zcol, bcol in table.scan_column_batches(
                txn, ["zindex", "blob"]
            ):
                seen += len(zcol)
    assert seen == ATOMS
    return {"scan_s": scan.elapsed}


def run() -> dict[str, object]:
    zindexes, values = make_point_set(POINTS)
    chunked = bench_chunked(zindexes, values)
    legacy = bench_legacy(zindexes, values)
    atoms = bench_atom_scan()

    store_speedup = legacy["store_s"] / chunked["store_s"]
    lookup_speedup = legacy["lookup_s"] / chunked["lookup_s"]
    combined_speedup = (legacy["store_s"] + legacy["lookup_s"]) / (
        chunked["store_s"] + chunked["lookup_s"]
    )
    return {
        "benchmark": "hotpath",
        "schema_version": SCHEMA_VERSION,
        "generated_unix": unix_now(),
        "points": POINTS,
        "cache_store_ops_per_s": POINTS / chunked["store_s"],
        "cache_lookup_hit_ops_per_s": POINTS / chunked["lookup_s"],
        "atom_scan_ops_per_s": ATOMS / atoms["scan_s"],
        "legacy_cache_store_ops_per_s": POINTS / legacy["store_s"],
        "legacy_cache_lookup_hit_ops_per_s": POINTS / legacy["lookup_s"],
        "store_speedup_vs_legacy": store_speedup,
        "lookup_speedup_vs_legacy": lookup_speedup,
        "store_plus_lookup_speedup_vs_legacy": combined_speedup,
    }


def main() -> int:
    report = run()
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    floor = json.loads(FLOOR_PATH.read_text())
    failures = []
    for key, minimum in floor.items():
        got = float(report[key])  # type: ignore[arg-type]
        if got < minimum:
            failures.append(f"{key}: {got:.1f} < floor {minimum:.1f}")
    summary = {
        key: round(float(report[key]), 1)  # type: ignore[arg-type]
        for key in sorted(floor)
    }
    sys.stderr.write(f"bench_hotpath: {summary} -> {OUT_PATH}\n")
    if failures:
        sys.stderr.write("FLOOR VIOLATIONS: " + "; ".join(failures) + "\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
