"""Benchmark + reproduction of Sec. 5.3: local vs integrated evaluation."""

import pytest

from repro.client import local_threshold_evaluation
from repro.harness import local_vs_integrated
from repro.harness.common import threshold_levels


@pytest.fixture(scope="module")
def report(config, save_report):
    out = local_vs_integrated.run(config)
    save_report("local_vs_integrated", out)
    return out


def _seconds(cell: str) -> float:
    value, unit = cell.split()
    return float(value) * {"h": 3600, "s": 1, "ms": 1e-3}[unit]


def test_integrated_beats_local_by_orders_of_magnitude(report):
    rows = report.row_dict()
    local = _seconds(rows["local (client-side)"][1])
    integrated = _seconds(rows["integrated (cold cache)"][1])
    hit = _seconds(rows["integrated (cache hit)"][1])
    assert local / integrated > 50  # paper: >20 h vs ~2 min (~600x)
    assert integrated / hit > 10
    assert local / hit > 1000


def test_all_strategies_agree_on_points(report):
    counts = {row[0]: row[2] for row in report.rows}
    assert len(set(counts.values())) == 1


def test_benchmark_local_evaluation(report, benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    threshold = threshold_levels(dataset, "vorticity", 0)["medium"]

    result = benchmark(
        local_threshold_evaluation,
        mediator, "mhd", 0, threshold, dataset.spec.side // 2,
    )
    assert result.subqueries == 8
