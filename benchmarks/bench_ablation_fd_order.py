"""Ablation: kernel halo vs atom granularity.

The kernel half-width equals ``order / 2`` (paper Eq. 2 uses 4th order)
and sets how much boundary data a node must fetch (§4).  Storage,
however, is atom-granular: the 8^3 atoms mean *any* half-width from 1 to
8 rounds up to exactly one extra atom layer, so switching between 2nd-
and 8th-order differencing changes accuracy but not I/O — while a raw
field (single-point kernel, e.g. the magnetic field) needs no halo at
all, which is why the paper's Fig. 9(c) shows less I/O for it.
"""

import pytest

from repro.core import ThresholdQuery
from repro.costmodel import Category
from repro.costmodel.ledger import METER_HALO_BYTES
from repro.harness.common import ExperimentReport, threshold_levels

ORDERS = (2, 4, 6, 8)


@pytest.fixture(scope="module")
def report(config, save_report):
    dataset, mediator = config.make_cluster()
    levels = threshold_levels(dataset, "vorticity", 0)

    rows = []
    for order in ORDERS:
        query = ThresholdQuery("mhd", "vorticity", 0, levels["medium"],
                               fd_order=order)
        mediator.drop_cache_entries("mhd", "vorticity", 0)
        mediator.drop_page_caches()
        result = mediator.threshold(
            query, processes=config.processes, use_cache=False
        )
        rows.append(
            [
                f"vorticity, order {order}",
                order // 2,
                f"{result.ledger.meter(METER_HALO_BYTES) / 2**20:.2f}",
                f"{result.ledger[Category.IO]:.1f}",
                f"{result.elapsed:.1f}",
            ]
        )

    magnetic = threshold_levels(dataset, "magnetic", 0)["medium"]
    mediator.drop_page_caches()
    raw = mediator.threshold(
        ThresholdQuery("mhd", "magnetic", 0, magnetic),
        processes=config.processes, use_cache=False,
    )
    rows.append(
        [
            "magnetic (raw, single-point kernel)",
            0,
            f"{raw.ledger.meter(METER_HALO_BYTES) / 2**20:.2f}",
            f"{raw.ledger[Category.IO]:.1f}",
            f"{raw.elapsed:.1f}",
        ]
    )

    out = ExperimentReport(
        title="Ablation -- kernel halo vs atom granularity "
        "(medium threshold, cold cache)",
        headers=["kernel", "half-width", "halo MiB", "I/O s", "total s"],
        rows=rows,
        notes=[
            "half-widths 1-4 all round up to one 8-point atom layer, so "
            "orders 2-8 move identical halo bytes; only a single-point "
            "kernel avoids the boundary exchange entirely",
        ],
    )
    save_report("ablation_fd_order", out)
    return out


def test_halo_identical_across_orders(report):
    """Atom granularity: orders 2-8 fetch the same boundary atoms."""
    halo = [float(row[2]) for row in report.rows[:-1]]
    assert max(halo) == min(halo)
    assert halo[0] > 0


def test_raw_field_needs_no_halo(report):
    assert float(report.rows[-1][2]) == 0.0


def test_raw_field_io_not_higher(report):
    derived_io = float(report.rows[0][3])
    raw_io = float(report.rows[-1][3])
    assert raw_io <= derived_io


def test_benchmark_eighth_order_query(report, benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    threshold = threshold_levels(dataset, "vorticity", 0)["medium"]
    query = ThresholdQuery("mhd", "vorticity", 0, threshold, fd_order=8)

    def run():
        mediator.drop_page_caches()
        return mediator.threshold(query, processes=4, use_cache=False)

    result = benchmark(run)
    assert len(result) > 0
