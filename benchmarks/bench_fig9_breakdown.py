"""Benchmark + reproduction of Fig. 9: per-field time breakdowns."""

import pytest

from repro.core import ThresholdQuery
from repro.harness import fig9
from repro.harness.common import threshold_levels


@pytest.fixture(scope="module")
def report(config, save_report):
    out = fig9.run(config)
    save_report("fig9_breakdown", out)
    return out


def _rows(report, fieldname, cache):
    return [
        row for row in report.rows if row[0] == fieldname and row[2] == cache
    ]


def test_q_criterion_costs_more_compute_than_vorticity(report):
    """Paper §5.4: Q needs all 9 gradient components."""
    for level_index in range(3):
        vorticity = float(_rows(report, "vorticity", "miss")[level_index][6])
        q = float(_rows(report, "q_criterion", "miss")[level_index][6])
        assert q > vorticity * 1.3


def test_vorticity_and_q_have_equal_io(report):
    """Paper §5.4: same kernel of computation, same I/O."""
    vorticity = float(_rows(report, "vorticity", "miss")[0][5])
    q = float(_rows(report, "q_criterion", "miss")[0][5])
    assert abs(vorticity - q) / vorticity < 0.05


def test_magnetic_field_needs_no_compute(report):
    """Paper §5.4: a raw field is only compared against the threshold."""
    magnetic = float(_rows(report, "magnetic", "miss")[0][6])
    vorticity = float(_rows(report, "vorticity", "miss")[0][6])
    assert magnetic < vorticity * 0.1


def test_cache_lookup_negligible_even_on_hits(report):
    for row in report.rows:
        lookup, total = float(row[4]), float(row[9])
        if row[2] == "miss":
            assert lookup < 0.05 * total


def test_hits_dominated_by_user_transfer_at_low_threshold(report):
    for fieldname in ("vorticity", "q_criterion", "magnetic"):
        low_hit = _rows(report, fieldname, "hit")[2]
        med_user, total = float(low_hit[8]), float(low_hit[9])
        assert med_user > 0.5 * total


def test_hits_are_order_of_magnitude_faster_for_all_fields(report):
    for fieldname in ("vorticity", "q_criterion", "magnetic"):
        for level_index in range(3):
            miss = float(_rows(report, fieldname, "miss")[level_index][9])
            hit = float(_rows(report, fieldname, "hit")[level_index][9])
            assert miss / hit >= 10


def test_benchmark_q_criterion_miss(report, benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    threshold = threshold_levels(dataset, "q_criterion", 0)["medium"]
    query = ThresholdQuery("mhd", "q_criterion", 0, threshold)

    def run():
        mediator.drop_cache_entries("mhd", "q_criterion", 0)
        mediator.drop_page_caches()
        return mediator.threshold(query, processes=config.processes)

    result = benchmark(run)
    assert result.cache_hits == 0
