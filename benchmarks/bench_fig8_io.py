"""Benchmark + reproduction of Fig. 8: total vs I/O-only running time."""

import pytest

from repro.core import ThresholdQuery
from repro.harness import fig8
from repro.harness.common import threshold_levels


@pytest.fixture(scope="module")
def report(config, save_report):
    out = fig8.run(config)
    save_report("fig8_io", out)
    return out


def _row(report, processes):
    return report.row_dict()[processes]


def test_io_is_about_half_the_single_process_total(report):
    total, io_only = float(_row(report, 1)[1]), float(_row(report, 1)[2])
    assert 0.35 <= io_only / total <= 0.65


def test_io_shrinks_modestly_with_processes(report):
    io1 = float(_row(report, 1)[2])
    io8 = float(_row(report, 8)[2])
    assert io8 < io1  # more streams help...
    assert io8 > io1 / 2.5  # ...but nowhere near linearly (shared disks)


def test_multiprocess_total_matches_single_process_io(report):
    """Paper: the 4-8 process total ~ the 1-process I/O-only time."""
    io1 = float(_row(report, 1)[2])
    for processes in (4, 8):
        total = float(_row(report, processes)[1])
        assert abs(total - io1) / io1 < 0.35


def test_benchmark_io_only_query(report, benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    threshold = threshold_levels(dataset, "vorticity", 0)["medium"]
    query = ThresholdQuery("mhd", "vorticity", 0, threshold)

    def run():
        mediator.drop_page_caches()
        return mediator.threshold(
            query, processes=4, use_cache=False, io_only=True
        )

    result = benchmark(run)
    assert len(result) == 0  # I/O-only mode returns no points
