"""Benchmark + reproduction of Fig. 2: PDF of the vorticity norm."""

import numpy as np
import pytest

from repro.analysis import norm_rms
from repro.core import PdfQuery
from repro.harness import fig2_pdf
from repro.harness.common import ground_truth_norm


@pytest.fixture(scope="module")
def report(config, shared_cluster, save_report):
    out = fig2_pdf.run(config, prebuilt=shared_cluster)
    save_report("fig2_pdf", out)
    return out


def test_fig2_counts_decay_monotonically(report):
    """The paper's PDF decays over several decades past the mode."""
    counts = [row[1] for row in report.rows]
    peak = counts.index(max(counts))
    tail = [c for c in counts[peak:] if c > 0]
    assert tail == sorted(tail, reverse=True)
    assert len(tail) >= 4  # populated tail spanning multiple bins


def test_fig2_total_covers_grid(report, config):
    assert sum(row[1] for row in report.rows) == config.side**3


def test_benchmark_pdf_query(report, benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    rms = norm_rms(ground_truth_norm(dataset, "vorticity", 0))
    edges = tuple(np.linspace(0.0, 10.0 * rms, 11))
    query = PdfQuery("mhd", "vorticity", 0, edges)

    def run_pdf():
        mediator.drop_page_caches()
        return mediator.pdf(query, processes=config.processes)

    result = benchmark(run_pdf)
    assert result.total_points == config.side**3
