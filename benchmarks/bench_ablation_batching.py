"""Ablation: batched same-source queries vs back-to-back evaluation.

Different derived fields of the same raw source (vorticity and the Q-
and R-invariants all derive from the velocity) can share one scan: the
atoms are read once and every kernel runs on the same in-memory block
(the batch-processing direction of paper §2/§7).  With I/O roughly half
of a cold query (Fig. 8), batching k fields saves nearly the whole I/O
cost of k-1 of them.
"""

import pytest

from repro.core import ThresholdQuery
from repro.costmodel import Category
from repro.costmodel.ledger import METER_IO_BYTES
from repro.harness.common import ExperimentReport, threshold_levels


@pytest.fixture(scope="module")
def report(config, save_report):
    dataset, mediator = config.make_cluster()
    queries = [
        ThresholdQuery("mhd", field, 0,
                       threshold_levels(dataset, field, 0)["medium"])
        for field in ("vorticity", "q_criterion", "r_invariant")
    ]

    sequential_total = 0.0
    sequential_io = 0.0
    for query in queries:
        mediator.drop_page_caches()
        result = mediator.threshold(
            query, processes=config.processes, use_cache=False
        )
        sequential_total += result.elapsed
        sequential_io += result.ledger[Category.IO]

    mediator.drop_page_caches()
    batch = mediator.batch_threshold(
        queries, processes=config.processes, use_cache=False
    )

    rows = [
        ["three sequential queries", f"{sequential_total:.1f}",
         f"{sequential_io:.1f}"],
        ["one batched query (shared scan)", f"{batch.ledger.total:.1f}",
         f"{batch.ledger[Category.IO]:.1f}"],
        ["saving", f"{1 - batch.ledger.total / sequential_total:.0%}", ""],
    ]
    out = ExperimentReport(
        title="Ablation -- batched vs sequential same-source queries "
        "(vorticity + Q + R, cold cache, simulated seconds)",
        headers=["strategy", "total", "I/O"],
        rows=rows,
        notes=["the batch reads the velocity atoms once instead of thrice"],
    )
    save_report("ablation_batching", out)
    return out


def test_batch_does_one_third_of_the_io(report):
    sequential_io = float(report.rows[0][2])
    batch_io = float(report.rows[1][2])
    assert batch_io < 0.45 * sequential_io


def test_batch_saves_at_least_a_quarter(report):
    sequential = float(report.rows[0][1])
    batched = float(report.rows[1][1])
    assert batched < 0.75 * sequential


def test_benchmark_batched_queries(report, benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    queries = [
        ThresholdQuery("mhd", field, 1,
                       threshold_levels(dataset, field, 1)["medium"])
        for field in ("vorticity", "q_criterion")
    ]

    def run():
        mediator.drop_page_caches()
        return mediator.batch_threshold(
            queries, processes=config.processes, use_cache=False
        )

    result = benchmark(run)
    assert len(result) == 2
