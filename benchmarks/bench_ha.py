"""High-availability benchmark: failover cost and anti-entropy rate.

Stands up a two-node cluster with replication factor 2 (every Morton
shard on both nodes) behind :class:`~repro.ha.HaTcpTransport` and
measures:

* ``healthy_threshold_s`` — median threshold latency with both
  replicas alive, the replicated-routing baseline;
* ``failover_added_s`` — the *extra* wall time of the first query
  issued after one node is killed: the dead replica's parts fail their
  dial, the router demotes it, and the shard re-scatters to the
  survivor.  The answer is verified point-for-point against the
  in-process cluster, so the number is the cost of a correct failover,
  not of a degraded one;
* ``steady_after_failover_s`` — median latency once the router has
  learned the death, i.e. the one-node steady state;
* ``antientropy_atoms_per_s`` — digest-compare throughput of a clean
  :func:`~repro.ha.anti_entropy.catch_up` pass (no drift, so the rate
  is the compare path itself);
* ``antientropy_catchup_s`` / ``antientropy_atoms_restored`` — a
  drifted pass: atoms are deleted from one replica and fetched back
  from its peer.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_ha.py

Results land in ``BENCH_ha.json`` and are gated against
``benchmarks/ha_floor.json`` (plain keys are minimums; ``_max`` keys
are ceilings), exiting non-zero on a violation — the CI chaos leg
relies on that exit code.
"""

from __future__ import annotations

import json
import statistics
import sys
from pathlib import Path

import numpy as np

from repro.cluster.mediator import Mediator, build_cluster
from repro.cluster.node import _atom_table_name
from repro.cluster.partition import MortonPartitioner
from repro.core import ThresholdQuery
from repro.ha import HaTcpTransport, PlacementMap
from repro.ha.anti_entropy import catch_up
from repro.morton import MortonRange
from repro.net.server import ClusterConfig, NodeServer
from repro.obs.clock import Stopwatch, unix_now
from repro.simulation.datasets import mhd_dataset

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_ha.json"
FLOOR_PATH = Path(__file__).resolve().parent / "ha_floor.json"

SCHEMA_VERSION = 1

SIDE = 16
TIMESTEPS = 1
NODES = 2
REPLICATION = 2
HEALTHY_REPS = 5
#: Atoms deleted from one replica for the drifted catch-up leg.
DRIFT_ATOMS = 8
QUERY = ThresholdQuery(
    dataset="mhd", field="vorticity", timestep=0, threshold=0.5
)


def start_cluster() -> tuple[list[NodeServer], list[str]]:
    """Two in-thread replicated node servers over loopback, loaded."""
    config = ClusterConfig(
        dataset="mhd",
        side=SIDE,
        timesteps=TIMESTEPS,
        seed=11,
        nodes=NODES,
        replication_factor=REPLICATION,
    )
    servers = [NodeServer(i, config) for i in range(NODES)]
    addresses = [f"127.0.0.1:{s.port}" for s in servers]
    for server in servers:
        server.connect_peers(addresses)
        server.load()
        server.start()
    return servers, addresses


def make_mediator(addresses: list[str]) -> Mediator:
    """A replica-routing mediator over the running servers."""
    return Mediator(
        nodes=[],
        partitioner=MortonPartitioner(SIDE, NODES),
        transport=HaTcpTransport(
            addresses,
            placement=PlacementMap(NODES, NODES, REPLICATION),
            timeout=300.0,
        ),
        scatter_timeout=600.0,
    )


def bench_failover(
    mediator: Mediator,
    servers: list[NodeServer],
    expected_zindexes: np.ndarray,
) -> dict[str, float]:
    def timed_threshold() -> float:
        with Stopwatch() as watch:
            result = mediator.threshold(QUERY, use_cache=False)
        assert np.array_equal(np.sort(result.zindexes), expected_zindexes)
        return watch.elapsed

    timed_threshold()  # warm connections + describe
    healthy = statistics.median(timed_threshold() for _ in range(HEALTHY_REPS))
    servers[0].shutdown()
    first_after_kill = timed_threshold()
    steady = statistics.median(timed_threshold() for _ in range(HEALTHY_REPS))
    return {
        "healthy_threshold_s": healthy,
        "post_kill_threshold_s": first_after_kill,
        "failover_added_s": max(0.0, first_after_kill - healthy),
        "steady_after_failover_s": steady,
        "ha_failovers_total": mediator.metrics.get(
            "ha_failovers_total"
        ).value,
    }


def bench_antientropy() -> dict[str, float]:
    servers, _addresses = start_cluster()
    rejoiner = servers[0]
    try:
        # Clean pass: every atom compared, nothing moved.
        with Stopwatch() as clean_watch:
            clean = catch_up(rejoiner)
        assert clean.chunks_fetched == 0
        # Drifted pass: drop atoms from one replica, fetch them back.
        full_range = MortonRange(0, SIDE**3)
        with rejoiner.node.db.transaction(None) as txn:
            atoms = rejoiner.node.read_atoms(
                txn, "mhd", "pressure", 0, [full_range], charge=False
            )
        victims = sorted(atoms)[:DRIFT_ATOMS]
        table = rejoiner.node.db.table(_atom_table_name("mhd", "pressure"))
        with rejoiner.node.db.transaction() as txn:
            for zindex in victims:
                table.delete(txn, (0, zindex))
        with Stopwatch() as drift_watch:
            drifted = catch_up(rejoiner)
        assert drifted.chunks_fetched == len(victims)
        return {
            "antientropy_atoms_checked": float(clean.atoms_checked),
            "antientropy_clean_pass_s": clean_watch.elapsed,
            "antientropy_atoms_per_s": (
                clean.atoms_checked / clean_watch.elapsed
            ),
            "antientropy_catchup_s": drift_watch.elapsed,
            "antientropy_atoms_restored": float(drifted.chunks_fetched),
            "antientropy_bytes_fetched": float(drifted.bytes_fetched),
        }
    finally:
        for server in servers:
            server.shutdown()


def run() -> dict[str, object]:
    servers, addresses = start_cluster()
    mediator = make_mediator(addresses)
    in_process = build_cluster(
        mhd_dataset(side=SIDE, timesteps=TIMESTEPS, seed=11), nodes=NODES
    )
    try:
        expected = np.sort(
            in_process.threshold(QUERY, use_cache=False).zindexes
        )
        report: dict[str, object] = {
            "benchmark": "ha",
            "schema_version": SCHEMA_VERSION,
            "generated_unix": unix_now(),
            "side": SIDE,
            "nodes": NODES,
            "replication_factor": REPLICATION,
            "threshold_points": float(len(expected)),
        }
        report.update(bench_failover(mediator, servers, expected))
    finally:
        mediator.close()
        in_process.close()
        for server in servers:
            server.shutdown()
    report.update(bench_antientropy())
    return report


def check_floor(report: dict[str, object]) -> list[str]:
    """Plain keys are minimums; a ``_max`` suffix marks a ceiling."""
    floor = json.loads(FLOOR_PATH.read_text())
    failures = []
    for key, bound in floor.items():
        if key.endswith("_max"):
            got = float(report[key[: -len("_max")]])  # type: ignore[arg-type]
            if got > bound:
                failures.append(f"{key[:-4]}: {got:.3f} > ceiling {bound}")
        else:
            got = float(report[key])  # type: ignore[arg-type]
            if got < bound:
                failures.append(f"{key}: {got:.3f} < floor {bound}")
    return failures


def main() -> int:
    report = run()
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    summary = {
        key: round(float(report[key]), 3)  # type: ignore[arg-type]
        for key in (
            "healthy_threshold_s",
            "post_kill_threshold_s",
            "failover_added_s",
            "steady_after_failover_s",
            "antientropy_atoms_per_s",
            "antientropy_catchup_s",
        )
    }
    sys.stderr.write(f"bench_ha: {summary} -> {OUT_PATH}\n")
    failures = check_floor(report)
    if failures:
        sys.stderr.write("FLOOR VIOLATIONS: " + "; ".join(failures) + "\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
