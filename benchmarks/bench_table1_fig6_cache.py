"""Benchmark + reproduction of Table 1 / Fig. 6: cache effectiveness."""

import pytest

from repro.core import ThresholdQuery
from repro.harness import table1_fig6
from repro.harness.common import threshold_levels


@pytest.fixture(scope="module")
def report(config, shared_cluster, save_report):
    out = table1_fig6.run(config, prebuilt=shared_cluster)
    save_report("table1_fig6_cache", out)
    return out


def test_miss_overhead_is_small(report):
    """Paper: probing the cache first costs <3% even on a miss."""
    for row in report.rows:
        no_cache, miss = float(row[3]), float(row[4])
        assert miss <= no_cache * 1.05


def test_hits_are_an_order_of_magnitude_faster(report):
    """Paper's headline: >=10x speedup on cache hits."""
    for row in report.rows:
        miss, hit = float(row[4]), float(row[5])
        assert miss / hit >= 10


def test_hit_times_track_result_size(report):
    """Larger result sets take longer to serve (Table 1: 0.5/1.2/9.1 s)."""
    hits = [float(row[5]) for row in report.rows]  # high, medium, low
    assert hits[0] < hits[1] < hits[2]


def test_benchmark_cache_miss(report, benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    threshold = threshold_levels(dataset, "vorticity", 0)["medium"]
    query = ThresholdQuery("mhd", "vorticity", 0, threshold)

    def run_miss():
        mediator.drop_cache_entries("mhd", "vorticity", 0)
        mediator.drop_page_caches()
        return mediator.threshold(query, processes=config.processes)

    result = benchmark(run_miss)
    assert result.cache_hits == 0


def test_benchmark_cache_hit(benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    threshold = threshold_levels(dataset, "vorticity", 0)["medium"]
    query = ThresholdQuery("mhd", "vorticity", 0, threshold)
    mediator.threshold(query, processes=config.processes)  # warm

    def run_hit():
        mediator.drop_page_caches()
        return mediator.threshold(query, processes=config.processes)

    result = benchmark(run_hit)
    assert result.cache_hits == len(mediator.nodes)
