"""Ablation: cache tables on SSD vs on the HDD arrays.

The paper places each node's cache tables on local SSDs (Fig. 5) so that
"the time taken to perform a cache lookup is relatively small even in
the case of a cache hit" (§5.4).  This bench re-homes the cache on an
HDD-class device and measures what hits would cost.
"""

import dataclasses

import pytest

from repro.core import ThresholdQuery
from repro.costmodel import Category
from repro.costmodel.devices import SsdSpec
from repro.harness.common import ExperimentReport, threshold_levels


def _hit_time(config, spec):
    dataset, mediator = config.make_cluster(spec=spec)
    threshold = threshold_levels(dataset, "vorticity", 0)["low"]
    query = ThresholdQuery("mhd", "vorticity", 0, threshold)
    mediator.threshold(query, processes=config.processes)  # warm
    mediator.drop_page_caches()
    hit = mediator.threshold(query, processes=config.processes)
    assert hit.cache_hits == len(mediator.nodes)
    return hit


@pytest.fixture(scope="module")
def report(config, save_report):
    ssd_hit = _hit_time(config, config.spec)

    hdd_class = dataclasses.replace(
        config.spec,
        ssd=SsdSpec(
            read_mib_s=config.spec.hdd.stream_mib_s,
            write_mib_s=config.spec.hdd.stream_mib_s,
            latency_s=config.spec.hdd.seek_s,
        ),
    )
    hdd_hit = _hit_time(config, hdd_class)

    rows = [
        ["cache on SSD (paper)", f"{ssd_hit.elapsed:.2f}",
         f"{ssd_hit.ledger[Category.CACHE_LOOKUP]:.3f}"],
        ["cache on HDD arrays", f"{hdd_hit.elapsed:.2f}",
         f"{hdd_hit.ledger[Category.CACHE_LOOKUP]:.3f}"],
    ]
    out = ExperimentReport(
        title="Ablation -- cache device (low threshold, cache hit, "
        "simulated seconds)",
        headers=["placement", "hit total", "cache lookup"],
        rows=rows,
        notes=["SSD keeps the lookup negligible even for large entries"],
    )
    save_report("ablation_cache_device", out)
    return out


def test_hdd_lookup_costs_more(report):
    ssd_lookup = float(report.rows[0][2])
    hdd_lookup = float(report.rows[1][2])
    assert hdd_lookup > 3 * ssd_lookup


def test_ssd_hit_total_faster(report):
    assert float(report.rows[0][1]) < float(report.rows[1][1])


def test_benchmark_hit_with_ssd_cache(report, benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    threshold = threshold_levels(dataset, "vorticity", 1)["low"]
    query = ThresholdQuery("mhd", "vorticity", 1, threshold)
    mediator.threshold(query, processes=config.processes)

    result = benchmark(mediator.threshold, query, config.processes)
    assert result.cache_hits == len(mediator.nodes)
