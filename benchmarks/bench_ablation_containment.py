"""Ablation: spatial containment in the semantic cache.

A cached full-region entry answers any query over a *contained* region
("as long as they are within the same region and specify the same or
higher threshold", paper §4).  This bench quantifies the win: after one
full-timestep query, a follow-up over a sub-box — the typical "zoom in
on the interesting corner" interaction — costs only a filtered cache
read instead of a fresh raw-data evaluation of that sub-box.
"""

import pytest

from repro.core import ThresholdQuery
from repro.costmodel import Category
from repro.grid import Box
from repro.harness.common import ExperimentReport, threshold_levels


@pytest.fixture(scope="module")
def report(config, save_report):
    dataset, mediator = config.make_cluster()
    threshold = threshold_levels(dataset, "vorticity", 0)["low"]
    side = dataset.spec.side
    sub = Box((side // 4,) * 3, (3 * side // 4,) * 3)  # centre eighth

    # Warm the cache with the full-timestep query.
    full_query = ThresholdQuery("mhd", "vorticity", 0, threshold)
    mediator.drop_page_caches()
    full = mediator.threshold(full_query, processes=config.processes)

    # Zoom in: answered from the containing entry.
    sub_query = ThresholdQuery("mhd", "vorticity", 0, threshold, box=sub)
    mediator.drop_page_caches()
    contained = mediator.threshold(sub_query, processes=config.processes)
    assert contained.cache_hits == len(mediator.nodes)

    # The same zoom without the cache: fresh sub-box evaluation.
    mediator.drop_page_caches()
    recomputed = mediator.threshold(
        sub_query, processes=config.processes, use_cache=False
    )

    rows = [
        ["full-timestep query (warms cache)", f"{full.elapsed:.2f}",
         f"{full.ledger[Category.IO]:.2f}", len(full)],
        ["sub-box query via containment hit", f"{contained.elapsed:.3f}",
         f"{contained.ledger[Category.IO]:.2f}", len(contained)],
        ["sub-box query recomputed from raw", f"{recomputed.elapsed:.2f}",
         f"{recomputed.ledger[Category.IO]:.2f}", len(recomputed)],
    ]
    out = ExperimentReport(
        title="Ablation -- spatial containment (zoom-in after a "
        "full-timestep query, simulated seconds)",
        headers=["query", "total", "I/O", "points"],
        rows=rows,
        notes=[
            "the contained query reads only cacheData; recomputation "
            "re-reads and re-derives the sub-box",
        ],
    )
    save_report("ablation_containment", out)
    return out


def test_containment_answers_identically(report):
    assert report.rows[1][3] == report.rows[2][3]


def test_containment_much_faster_than_recompute(report):
    contained = float(report.rows[1][1])
    recomputed = float(report.rows[2][1])
    assert recomputed / contained > 5


def test_containment_does_no_raw_io(report):
    assert float(report.rows[1][2]) == 0.0
    assert float(report.rows[2][2]) > 0.0


def test_benchmark_containment_hit(report, benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    threshold = threshold_levels(dataset, "vorticity", 1)["low"]
    side = dataset.spec.side
    sub = Box((side // 4,) * 3, (3 * side // 4,) * 3)
    mediator.threshold(
        ThresholdQuery("mhd", "vorticity", 1, threshold),
        processes=config.processes,
    )
    query = ThresholdQuery("mhd", "vorticity", 1, threshold, box=sub)

    result = benchmark(mediator.threshold, query, config.processes)
    assert result.cache_hits == len(mediator.nodes)
