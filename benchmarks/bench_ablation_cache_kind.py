"""Ablation: query-result caching vs data-only caching (the tree cache).

The paper's §6 argues that caching *query results* beats the tree
cache's raw-data caching because "caching query results preserves the
computational effort in addition to reducing I/O".  A data-only cache is
exactly what a warm buffer pool gives: the second evaluation reads
nothing from disk but still runs the kernel at every grid point.  This
bench measures all three regimes.
"""

import pytest

from repro.core import ThresholdQuery
from repro.costmodel import Category
from repro.harness.common import ExperimentReport, threshold_levels


@pytest.fixture(scope="module")
def report(config, save_report):
    dataset, mediator = config.make_cluster(buffer_pages=4096)
    threshold = threshold_levels(dataset, "vorticity", 0)["medium"]
    query = ThresholdQuery("mhd", "vorticity", 0, threshold)

    # Cold: nothing cached anywhere.
    mediator.drop_page_caches()
    cold = mediator.threshold(query, processes=config.processes,
                              use_cache=False)

    # Data cache: buffer pools warm (tree-cache analogue), recompute.
    # Only the boundary exchange's network time remains in the I/O phase.
    data_cached = mediator.threshold(query, processes=config.processes,
                                     use_cache=False)
    assert data_cached.ledger[Category.IO] < 0.05 * cold.ledger[Category.IO]

    # Result cache: semantic-cache hit.
    mediator.threshold(query, processes=config.processes)  # populate
    mediator.drop_page_caches()
    result_cached = mediator.threshold(query, processes=config.processes)
    assert result_cached.cache_hits == len(mediator.nodes)

    rows = [
        ["cold (no caching)", f"{cold.elapsed:.2f}",
         f"{cold.ledger[Category.IO]:.2f}",
         f"{cold.ledger[Category.COMPUTE]:.2f}"],
        ["data cache (tree-cache analogue)", f"{data_cached.elapsed:.2f}",
         f"{data_cached.ledger[Category.IO]:.2f}",
         f"{data_cached.ledger[Category.COMPUTE]:.2f}"],
        ["query-result cache (this paper)", f"{result_cached.elapsed:.2f}",
         f"{result_cached.ledger[Category.IO]:.2f}",
         f"{result_cached.ledger[Category.COMPUTE]:.2f}"],
    ]
    out = ExperimentReport(
        title="Ablation -- what gets cached (medium threshold, simulated s)",
        headers=["strategy", "total", "I/O", "compute"],
        rows=rows,
        notes=[
            "a data cache removes I/O but re-runs the kernel at every "
            "grid point; caching results removes both (paper Sec. 6)",
        ],
    )
    save_report("ablation_cache_kind", out)
    return out


def test_data_cache_still_pays_compute(report):
    rows = report.row_dict()
    data_compute = float(rows["data cache (tree-cache analogue)"][3])
    result_compute = float(rows["query-result cache (this paper)"][3])
    assert data_compute > 0
    assert result_compute == 0.0


def test_result_cache_beats_data_cache(report):
    rows = report.row_dict()
    cold = float(rows["cold (no caching)"][1])
    data = float(rows["data cache (tree-cache analogue)"][1])
    result = float(rows["query-result cache (this paper)"][1])
    assert result < data < cold
    assert data / result > 5  # preserved computation is the big win


def test_benchmark_data_cached_query(report, benchmark, config):
    dataset, mediator = config.make_cluster(buffer_pages=4096)
    threshold = threshold_levels(dataset, "vorticity", 0)["medium"]
    query = ThresholdQuery("mhd", "vorticity", 0, threshold)
    mediator.threshold(query, processes=config.processes, use_cache=False)

    result = benchmark(
        mediator.threshold, query, config.processes, False
    )
    assert len(result) > 0
