"""Ablation: LRU vs FIFO replacement under a structured workload.

"We use a least recently used cache replacement policy ... space is
freed up by removing the least recently used data across all quantities"
(paper §4), and §5.2 notes the workload is structured: scientists return
to the same hot timesteps again and again while sweeping others.  Under
such re-reference patterns LRU keeps the hot entries alive; FIFO evicts
them on schedule regardless of use.
"""

import numpy as np
import pytest

from repro.core.cache import SemanticCache
from repro.costmodel import Category
from repro.costmodel.devices import HddArraySpec, SsdSpec
from repro.grid import Box
from repro.harness.common import ExperimentReport
from repro.morton import encode_array
from repro.storage import Database, StorageDevice

BOX = Box.cube(16)
POINTS_PER_ENTRY = 40
RECORD_BYTES = 20
#: Budget for 3 entries; the workload cycles over 6 cold + 1 hot timestep.
CAPACITY = 3 * POINTS_PER_ENTRY * RECORD_BYTES


def entry_points(timestep):
    rng = np.random.default_rng(timestep)
    xs = rng.integers(0, 16, POINTS_PER_ENTRY * 2)
    ys = rng.integers(0, 16, POINTS_PER_ENTRY * 2)
    zs = rng.integers(0, 16, POINTS_PER_ENTRY * 2)
    z = np.unique(encode_array(xs, ys, zs))[:POINTS_PER_ENTRY]
    return z, np.linspace(5.0, 10.0, len(z))


def run_workload(policy: str) -> tuple[int, int]:
    """A structured workload: hot timestep 0 re-referenced every step."""
    db = Database()
    db.add_device(StorageDevice("hdd", HddArraySpec(), Category.IO))
    db.add_device(StorageDevice("ssd", SsdSpec(), Category.CACHE_LOOKUP))
    cache = SemanticCache(
        db, capacity_bytes=CAPACITY, point_record_bytes=RECORD_BYTES,
        policy=policy,
    )
    hits = misses = 0
    sweep = [1, 2, 3, 4, 5, 6] * 3  # cold timesteps cycled
    for cold_timestep in sweep:
        for timestep in (0, cold_timestep):  # hot entry touched each round
            with db.transaction() as txn:
                lookup = cache.lookup(
                    txn, "mhd", "vorticity", timestep, BOX, 5.0
                )
                if lookup.hit:
                    hits += 1
                else:
                    misses += 1
                    z, values = entry_points(timestep)
                    cache.store(
                        txn, "mhd", "vorticity", timestep, BOX, 5.0, z, values
                    )
    return hits, misses


@pytest.fixture(scope="module")
def report(save_report):
    rows = []
    ratios = {}
    for policy in ("lru", "fifo"):
        hits, misses = run_workload(policy)
        ratios[policy] = hits / (hits + misses)
        rows.append([policy, hits, misses, f"{ratios[policy]:.0%}"])
    out = ExperimentReport(
        title="Ablation -- cache replacement policy under a structured "
        "workload (hot timestep re-referenced between sweeps)",
        headers=["policy", "hits", "misses", "hit ratio"],
        rows=rows,
        notes=[
            "LRU keeps the re-referenced entry resident; FIFO evicts it "
            "on schedule (paper uses LRU, Sec. 4)",
        ],
    )
    save_report("ablation_replacement", out)
    return out


def test_lru_beats_fifo_on_structured_reuse(report):
    by_policy = report.row_dict()
    lru_hits, fifo_hits = by_policy["lru"][1], by_policy["fifo"][1]
    assert lru_hits > fifo_hits


def test_lru_keeps_hot_entry_alive(report):
    lru_ratio = float(report.row_dict()["lru"][3].rstrip("%")) / 100
    assert lru_ratio >= 0.4


def test_benchmark_structured_workload_lru(report, benchmark):
    hits, misses = benchmark(run_workload, "lru")
    assert hits > 0
