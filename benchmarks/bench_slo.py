"""SLO benchmark: open-loop mixed traffic, latency percentiles, gates.

Stands up the same two-node loopback TCP cluster as ``bench_net`` and
drives it the way a service-level objective is actually checked:

* an **open-loop load generator** — requests depart on a fixed arrival
  schedule regardless of completions (so queueing shows up in the tail
  instead of being hidden by back-pressure), mixing threshold, top-k
  and PDF traffic;
* **p50/p99 wall latency per query class** plus the overall error rate;
* the **span-category breakdown** of the traced load, from the stitched
  distributed traces (every query's node-side spans ship back over the
  wire and are grafted under its root);
* the **continuous-profiling overhead**: the same fixed workload with
  and without the sampling profiler attached, gated below 5%.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_slo.py

Writes ``BENCH_slo.json`` at the repo root, the stitched traces to
``slo_trace.jsonl`` and the span-keyed collapsed-stack profile to
``slo_profile.txt`` (both CI artifacts), and gates the report against
``benchmarks/slo_floor.json`` (plain keys are minimums; ``_max`` keys
are ceilings), exiting non-zero on a violation.
"""

from __future__ import annotations

import json
import statistics
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.cluster.mediator import Mediator
from repro.core import PdfQuery, ThresholdQuery, TopKQuery
from repro.obs import clock, tracing
from repro.obs.clock import Stopwatch, unix_now
from repro.obs.profile import SamplingProfiler

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_net import SIDE, make_mediator, start_cluster  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_slo.json"
TRACE_PATH = REPO_ROOT / "slo_trace.jsonl"
PROFILE_PATH = REPO_ROOT / "slo_profile.txt"
FLOOR_PATH = Path(__file__).resolve().parent / "slo_floor.json"

#: Version of the report's key set; bump when keys are added,
#: renamed or removed so downstream dashboards can detect layout
#: changes.
SCHEMA_VERSION = 2

#: Open-loop arrival rate (requests per second) and request count.
ARRIVAL_RATE = 6.0
REQUESTS = 48

#: Serial threshold queries per leg of the profiler-overhead check.
OVERHEAD_QUERIES = 10
OVERHEAD_REPS = 6

THRESHOLD_QUERY = ThresholdQuery(
    dataset="mhd", field="vorticity", timestep=0, threshold=0.5
)
TOPK_QUERY = TopKQuery(dataset="mhd", field="pressure", timestep=0, k=32)
PDF_QUERY = PdfQuery(
    dataset="mhd",
    field="pressure",
    timestep=1,
    bin_edges=tuple(-3.0 + 0.5 * i for i in range(13)),
)

#: The traffic mix, cycled deterministically: half threshold scans,
#: a quarter each top-k and PDF.
MIX = ("threshold", "topk", "threshold", "pdf")


def issue(mediator: Mediator, kind: str) -> object:
    if kind == "threshold":
        return mediator.threshold(THRESHOLD_QUERY, use_cache=False)
    if kind == "topk":
        return mediator.topk(TOPK_QUERY)
    if kind == "pdf":
        return mediator.pdf(PDF_QUERY)
    raise ValueError(f"unknown query class {kind!r}")


def percentile(samples: list[float], q: float) -> float:
    ranked = sorted(samples)
    return ranked[min(int(len(ranked) * q), len(ranked) - 1)]


def bench_open_loop(
    mediator: Mediator, collector: tracing.TraceCollector
) -> dict[str, object]:
    """Fixed-schedule mixed traffic; latency is measured per departure
    slot, so a slow server shows up as tail latency, not a slower test."""
    latencies: dict[str, list[float]] = {kind: [] for kind in set(MIX)}
    errors = 0

    def one(kind: str) -> tuple[str, float, bool]:
        with Stopwatch() as watch:
            try:
                issue(mediator, kind)
            except Exception:
                return kind, watch.elapsed, True
        return kind, watch.elapsed, False

    schedule = [MIX[i % len(MIX)] for i in range(REQUESTS)]
    with ThreadPoolExecutor(max_workers=16) as pool:
        started = clock.now()
        futures = []
        for slot, kind in enumerate(schedule):
            pause = started + slot / ARRIVAL_RATE - clock.now()
            if pause > 0:
                clock.sleep(pause)
            futures.append(pool.submit(one, kind))
        for future in futures:
            kind, elapsed, failed = future.result()
            if failed:
                errors += 1
            else:
                latencies[kind].append(elapsed)

    out: dict[str, object] = {
        "requests": REQUESTS,
        "arrival_rate_per_s": ARRIVAL_RATE,
        "error_rate": errors / REQUESTS,
    }
    for kind, samples in sorted(latencies.items()):
        out[f"{kind}_requests"] = len(samples)
        if samples:
            out[f"{kind}_p50_ms"] = statistics.median(samples) * 1e3
            out[f"{kind}_p99_ms"] = percentile(samples, 0.99) * 1e3

    # Span-category breakdown of the traced load: wall seconds per span
    # name across every stitched trace, plus how much of it ran on the
    # nodes (grafted spans carry origin=nodeN).
    span_seconds: dict[str, float] = {}
    remote_seconds = 0.0
    total_spans = 0
    for trace_id in collector.trace_ids():
        for span in collector.trace(trace_id):
            total_spans += 1
            span_seconds[span.name] = (
                span_seconds.get(span.name, 0.0) + span.wall_seconds
            )
            if span.attributes.get("origin"):
                remote_seconds += span.wall_seconds
    out["traces"] = len(collector.trace_ids())
    out["spans"] = total_spans
    out["span_seconds_by_name"] = {
        name: round(seconds, 6)
        for name, seconds in sorted(span_seconds.items())
    }
    out["remote_span_seconds"] = round(remote_seconds, 6)
    return out


def bench_profiler_overhead(mediator: Mediator) -> dict[str, float]:
    """The same serial workload with and without the sampling profiler.

    Bare and profiled legs are interleaved so slow drift (CPU frequency,
    cache state, co-tenants) hits both sides alike; the gated ratio is
    the median of adjacent-pair ratios, which cancels that drift instead
    of letting one lucky bare leg inflate the estimate.
    """

    def leg() -> float:
        with Stopwatch() as watch:
            for _ in range(OVERHEAD_QUERIES):
                mediator.threshold(THRESHOLD_QUERY, use_cache=False)
        return watch.elapsed

    leg()  # warm both caches and the connection pool
    profiler = SamplingProfiler(interval=0.005)
    bare_legs: list[float] = []
    profiled_legs: list[float] = []
    for _ in range(OVERHEAD_REPS):
        bare_legs.append(leg())
        with profiler:  # samples accumulate across restarts
            profiled_legs.append(leg())
    profiler.write(PROFILE_PATH, by_span=True)
    ratio = statistics.median(
        profiled / bare for bare, profiled in zip(bare_legs, profiled_legs)
    )
    return {
        "profiler_bare_s": min(bare_legs),
        "profiler_profiled_s": min(profiled_legs),
        "profiler_samples": float(profiler.samples),
        "profiler_overhead_ratio": ratio,
    }


def run() -> dict[str, object]:
    servers, addresses = start_cluster()
    mediator = make_mediator(addresses)
    collector = tracing.install(tracing.TraceCollector(max_traces=1024))
    try:
        report: dict[str, object] = {
            "benchmark": "slo",
            "schema_version": SCHEMA_VERSION,
            "generated_unix": unix_now(),
            "side": SIDE,
            "nodes": len(servers),
        }
        report.update(bench_open_loop(mediator, collector))
        report.update(bench_profiler_overhead(mediator))
        TRACE_PATH.write_text(collector.to_jsonl())
        return report
    finally:
        tracing.uninstall()
        mediator.close()
        for server in servers:
            server.shutdown()


def check_floor(report: dict[str, object]) -> list[str]:
    """Plain keys are minimums; ``_max``-suffixed keys are ceilings."""
    floor = json.loads(FLOOR_PATH.read_text())
    failures = []
    for key, bound in floor.items():
        if key.endswith("_max"):
            got = float(report[key[: -len("_max")]])  # type: ignore[arg-type]
            if got > bound:
                failures.append(f"{key[:-4]}: {got:.3f} > ceiling {bound}")
        else:
            got = float(report[key])  # type: ignore[arg-type]
            if got < bound:
                failures.append(f"{key}: {got:.3f} < floor {bound}")
    return failures


def main() -> int:
    report = run()
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    summary = {
        key: round(float(report[key]), 3)  # type: ignore[arg-type]
        for key in (
            "error_rate",
            "threshold_p50_ms",
            "threshold_p99_ms",
            "topk_p99_ms",
            "pdf_p99_ms",
            "profiler_overhead_ratio",
        )
        if key in report
    }
    sys.stderr.write(f"bench_slo: {summary} -> {OUT_PATH}\n")
    sys.stderr.write(
        f"bench_slo: traces -> {TRACE_PATH}, profile -> {PROFILE_PATH}\n"
    )
    failures = check_floor(report)
    if failures:
        sys.stderr.write("FLOOR VIOLATIONS: " + "; ".join(failures) + "\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
