"""SLO benchmark: open-loop mixed traffic, latency percentiles, gates.

Two profiles, selected with ``--profile`` and gated against their own
section of ``benchmarks/slo_floor.json``:

``default``
    The original mediator-level check.  Stands up the same two-node
    loopback TCP cluster as ``bench_net`` and drives it the way a
    service-level objective is actually checked: an **open-loop load
    generator** (requests depart on a fixed arrival schedule regardless
    of completions, so queueing shows up in the tail instead of being
    hidden by back-pressure) mixing threshold, top-k and PDF traffic;
    **p50/p99 wall latency per query class** plus the overall error
    rate; the **span-category breakdown** of the traced load; and the
    **continuous-profiling overhead**, gated below 5%.

``scale``
    The front-door check.  Puts :class:`repro.net.aio.AsyncHttpFrontend`
    (admission control, prioritized queue, bounded bridge) over the same
    cluster and sustains **thousands of concurrent keep-alive clients**
    from an asyncio open-loop generator: every request departs on a
    global schedule, latency is measured from the *scheduled* departure,
    and every response must be either a correct answer or a well-formed
    typed shed.  Reports per-class p50/p99, shed rate and reasons, the
    admitted-request error rate, and the queue-wait breakdown from the
    door's own histogram.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_slo.py [--profile default|scale]
        [--arrival-rate R] [--requests N] [--clients C] [--duration S]

Both profiles merge their keys into ``BENCH_slo.json`` at the repo root
(CI runs them back to back and uploads one artifact).  The default
profile also writes the stitched traces to ``slo_trace.jsonl`` and the
span-keyed collapsed-stack profile to ``slo_profile.txt``.  Within a
floor section, plain keys are minimums and ``_max`` keys are ceilings;
any violation exits non-zero.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.cluster.admission import AdmissionController
from repro.cluster.mediator import Mediator
from repro.cluster.webservice import WebService
from repro.core import PdfQuery, ThresholdQuery, TopKQuery
from repro.net.aio import AsyncHttpFrontend
from repro.obs import clock, tracing
from repro.obs.clock import Stopwatch, unix_now
from repro.obs.profile import SamplingProfiler

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_net import SIDE, make_mediator, start_cluster  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_slo.json"
TRACE_PATH = REPO_ROOT / "slo_trace.jsonl"
PROFILE_PATH = REPO_ROOT / "slo_profile.txt"
FLOOR_PATH = Path(__file__).resolve().parent / "slo_floor.json"

#: Version of the report's key set; bump when keys are added,
#: renamed or removed so downstream dashboards can detect layout
#: changes.  v3: profile-keyed floor sheet, ``scale_*`` front-door
#: keys, and the active target sheet embedded in the report.
SCHEMA_VERSION = 3

#: Open-loop arrival rate (requests per second) and request count of
#: the default (mediator-level) profile.
ARRIVAL_RATE = 6.0
REQUESTS = 48

#: Scale-profile defaults: concurrent keep-alive clients, total
#: arrival rate, run length, and the tenant population the clients are
#: spread over.  Tuned for a small shared CI box: the light class sits
#: far below the door's sequential capacity and the query class rides
#: the mediator's result cache.
SCALE_CLIENTS = 1000
SCALE_ARRIVAL_RATE = 120.0
SCALE_DURATION_S = 12.0
SCALE_TENANTS = 8
SCALE_MAX_INFLIGHT = 4

#: Scale-profile traffic mix, cycled deterministically: nine light
#: introspection requests for every threshold query.
SCALE_MIX = ("light",) * 9 + ("query",)

#: Per-class shed/response codes a flooded client may legitimately see.
SHED_CODES = {"quota_exceeded", "queue_full", "queue_timeout", "overloaded"}

#: Serial threshold queries per leg of the profiler-overhead check.
OVERHEAD_QUERIES = 10
OVERHEAD_REPS = 6

THRESHOLD_QUERY = ThresholdQuery(
    dataset="mhd", field="vorticity", timestep=0, threshold=0.5
)
TOPK_QUERY = TopKQuery(dataset="mhd", field="pressure", timestep=0, k=32)
PDF_QUERY = PdfQuery(
    dataset="mhd",
    field="pressure",
    timestep=1,
    bin_edges=tuple(-3.0 + 0.5 * i for i in range(13)),
)

#: The default profile's traffic mix, cycled deterministically: half
#: threshold scans, a quarter each top-k and PDF.
MIX = ("threshold", "topk", "threshold", "pdf")

#: Request bodies of the scale profile's two traffic classes.
SCALE_REQUESTS = {
    "light": {"method": "ListFields"},
    "query": {
        "method": "GetThreshold",
        "dataset": "mhd",
        "field": "vorticity",
        "timestep": 0,
        "threshold": 0.5,
    },
}


def issue(mediator: Mediator, kind: str) -> object:
    if kind == "threshold":
        return mediator.threshold(THRESHOLD_QUERY, use_cache=False)
    if kind == "topk":
        return mediator.topk(TOPK_QUERY)
    if kind == "pdf":
        return mediator.pdf(PDF_QUERY)
    raise ValueError(f"unknown query class {kind!r}")


def percentile(samples: list[float], q: float) -> float:
    ranked = sorted(samples)
    return ranked[min(int(len(ranked) * q), len(ranked) - 1)]


def bench_open_loop(
    mediator: Mediator,
    collector: tracing.TraceCollector,
    arrival_rate: float,
    requests: int,
) -> dict[str, object]:
    """Fixed-schedule mixed traffic; latency is measured per departure
    slot, so a slow server shows up as tail latency, not a slower test."""
    latencies: dict[str, list[float]] = {kind: [] for kind in set(MIX)}
    errors = 0

    def one(kind: str) -> tuple[str, float, bool]:
        with Stopwatch() as watch:
            try:
                issue(mediator, kind)
            except Exception:
                return kind, watch.elapsed, True
        return kind, watch.elapsed, False

    schedule = [MIX[i % len(MIX)] for i in range(requests)]
    with ThreadPoolExecutor(max_workers=16) as pool:
        started = clock.now()
        futures = []
        for slot, kind in enumerate(schedule):
            pause = started + slot / arrival_rate - clock.now()
            if pause > 0:
                clock.sleep(pause)
            futures.append(pool.submit(one, kind))
        for future in futures:
            kind, elapsed, failed = future.result()
            if failed:
                errors += 1
            else:
                latencies[kind].append(elapsed)

    out: dict[str, object] = {
        "requests": requests,
        "arrival_rate_per_s": arrival_rate,
        "error_rate": errors / requests,
    }
    for kind, samples in sorted(latencies.items()):
        out[f"{kind}_requests"] = len(samples)
        if samples:
            out[f"{kind}_p50_ms"] = statistics.median(samples) * 1e3
            out[f"{kind}_p99_ms"] = percentile(samples, 0.99) * 1e3

    # Span-category breakdown of the traced load: wall seconds per span
    # name across every stitched trace, plus how much of it ran on the
    # nodes (grafted spans carry origin=nodeN).
    span_seconds: dict[str, float] = {}
    remote_seconds = 0.0
    total_spans = 0
    for trace_id in collector.trace_ids():
        for span in collector.trace(trace_id):
            total_spans += 1
            span_seconds[span.name] = (
                span_seconds.get(span.name, 0.0) + span.wall_seconds
            )
            if span.attributes.get("origin"):
                remote_seconds += span.wall_seconds
    out["traces"] = len(collector.trace_ids())
    out["spans"] = total_spans
    out["span_seconds_by_name"] = {
        name: round(seconds, 6)
        for name, seconds in sorted(span_seconds.items())
    }
    out["remote_span_seconds"] = round(remote_seconds, 6)
    return out


def bench_profiler_overhead(mediator: Mediator) -> dict[str, float]:
    """The same serial workload with and without the sampling profiler.

    Bare and profiled legs are interleaved so slow drift (CPU frequency,
    cache state, co-tenants) hits both sides alike; the gated ratio is
    the median of adjacent-pair ratios, which cancels that drift instead
    of letting one lucky bare leg inflate the estimate.
    """

    def leg() -> float:
        with Stopwatch() as watch:
            for _ in range(OVERHEAD_QUERIES):
                mediator.threshold(THRESHOLD_QUERY, use_cache=False)
        return watch.elapsed

    leg()  # warm both caches and the connection pool
    profiler = SamplingProfiler(interval=0.005)
    bare_legs: list[float] = []
    profiled_legs: list[float] = []
    for _ in range(OVERHEAD_REPS):
        bare_legs.append(leg())
        with profiler:  # samples accumulate across restarts
            profiled_legs.append(leg())
    profiler.write(PROFILE_PATH, by_span=True)
    ratio = statistics.median(
        profiled / bare for bare, profiled in zip(bare_legs, profiled_legs)
    )
    return {
        "profiler_bare_s": min(bare_legs),
        "profiler_profiled_s": min(profiled_legs),
        "profiler_samples": float(profiler.samples),
        "profiler_overhead_ratio": ratio,
    }


def run(arrival_rate: float, requests: int) -> dict[str, object]:
    """The default profile: mediator-level open loop + profiler gate."""
    servers, addresses = start_cluster()
    mediator = make_mediator(addresses)
    collector = tracing.install(tracing.TraceCollector(max_traces=1024))
    try:
        report: dict[str, object] = {
            "benchmark": "slo",
            "side": SIDE,
            "nodes": len(servers),
        }
        report.update(
            bench_open_loop(mediator, collector, arrival_rate, requests)
        )
        report.update(bench_profiler_overhead(mediator))
        TRACE_PATH.write_text(collector.to_jsonl())
        return report
    finally:
        tracing.uninstall()
        mediator.close()
        for server in servers:
            server.shutdown()


# -- scale profile: the asyncio front door under thousands of clients --


async def _read_http_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict]:
    """One framed HTTP/1.1 response: ``(status, parsed JSON body)``."""
    head = await asyncio.wait_for(reader.readline(), 30.0)
    status = int(head.split()[1])
    length = 0
    while True:
        line = await asyncio.wait_for(reader.readline(), 30.0)
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    raw = await asyncio.wait_for(reader.readexactly(length), 30.0)
    return status, json.loads(raw)


def _encode_request(kind: str, tenant: str) -> bytes:
    payload = json.dumps(SCALE_REQUESTS[kind]).encode("utf-8")
    head = (
        f"POST / HTTP/1.1\r\nContent-Type: application/json\r\n"
        f"X-Tenant: {tenant}\r\nContent-Length: {len(payload)}\r\n\r\n"
    ).encode("latin-1")
    return head + payload


async def _scale_client(
    port: int,
    tenant: str,
    slots: list[tuple[float, str]],
    start_at: float,
    results: list[tuple[str, float, str]],
) -> None:
    """One keep-alive client draining its share of the global schedule.

    ``slots`` are (relative departure time, kind) pairs.  Latency is
    measured from the *scheduled* departure, so a busy connection (or a
    slow door) shows up as tail latency — the open-loop property.
    """
    loop = asyncio.get_running_loop()
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection("127.0.0.1", port), 30.0
    )
    try:
        for offset, kind in slots:
            scheduled = start_at + offset
            pause = scheduled - loop.time()
            if pause > 0:
                await asyncio.sleep(pause)
            outcome = "malformed"
            try:
                writer.write(_encode_request(kind, tenant))
                await asyncio.wait_for(writer.drain(), 30.0)
                status, body = await _read_http_response(reader)
                if status == 200 and body.get("status") == "ok":
                    outcome = "ok"
                elif (
                    status in (429, 503)
                    and body.get("code") in SHED_CODES
                    and body.get("retry_after_s", 0) > 0
                ):
                    outcome = "shed"
                else:
                    outcome = "error"
            except (OSError, asyncio.TimeoutError, ValueError):
                outcome = "malformed"
            results.append((kind, loop.time() - scheduled, outcome))
    finally:
        writer.close()
        try:
            await asyncio.wait_for(writer.wait_closed(), 5.0)
        except (OSError, asyncio.TimeoutError):
            pass


async def _scale_drive(
    port: int, clients: int, arrival_rate: float, duration: float
) -> list[tuple[str, float, str]]:
    """Open ``clients`` keep-alive connections and run the open loop."""
    total = int(arrival_rate * duration)
    # Global departure schedule, round-robined over the client pool so
    # every connection stays live for the whole run.
    per_client: list[list[tuple[float, str]]] = [[] for _ in range(clients)]
    for slot in range(total):
        kind = SCALE_MIX[slot % len(SCALE_MIX)]
        per_client[slot % clients].append((slot / arrival_rate, kind))
    results: list[tuple[str, float, str]] = []
    loop = asyncio.get_running_loop()
    # Give the door time to accept the whole pool before traffic starts.
    start_at = loop.time() + max(2.0, clients / 500.0)
    tasks = [
        asyncio.ensure_future(
            _scale_client(
                port,
                f"t{index % SCALE_TENANTS}",
                slots,
                start_at,
                results,
            )
        )
        for index, slots in enumerate(per_client)
    ]
    await asyncio.gather(*tasks)
    return results


def run_scale(
    clients: int, arrival_rate: float, duration: float
) -> dict[str, object]:
    """The scale profile: the async door under an open-loop client fleet."""
    servers, addresses = start_cluster()
    mediator = make_mediator(addresses)
    service = WebService(mediator)
    per_tenant = arrival_rate / SCALE_TENANTS
    admission = AdmissionController(
        service.metrics,
        # Quotas sized to the offered load with ~2x headroom: normal
        # jitter is admitted, a runaway tenant is not.
        tenant_rate=per_tenant * 2.0,
        tenant_burst=max(8.0, per_tenant * 4.0),
        max_queue_depth=256,
        max_queue_wait=5.0,
        workers=SCALE_MAX_INFLIGHT,
    )
    door = AsyncHttpFrontend(
        service, admission=admission, max_inflight=SCALE_MAX_INFLIGHT
    )
    door.start()
    try:
        # Warm the mediator's result cache so the query class measures
        # the door, not one cold scatter.
        service.handle(dict(SCALE_REQUESTS["query"]))
        results = asyncio.run(
            _scale_drive(door.port, clients, arrival_rate, duration)
        )
    finally:
        door.shutdown()
        mediator.close()
        for server in servers:
            server.shutdown()

    admitted = [r for r in results if r[2] == "ok"]
    shed = [r for r in results if r[2] == "shed"]
    errored = [r for r in results if r[2] == "error"]
    malformed = [r for r in results if r[2] == "malformed"]
    total = len(results)
    out: dict[str, object] = {
        "scale_clients": clients,
        "scale_tenants": SCALE_TENANTS,
        "scale_arrival_rate_per_s": arrival_rate,
        "scale_duration_s": duration,
        "scale_requests": total,
        "scale_admitted": len(admitted),
        "scale_shed": len(shed),
        "scale_shed_rate": len(shed) / total if total else 0.0,
        "scale_admitted_error_rate": (
            len(errored) / (len(admitted) + len(errored))
            if admitted or errored
            else 0.0
        ),
        "scale_malformed_responses": len(malformed),
    }
    for kind in sorted(set(SCALE_MIX)):
        samples = [latency for k, latency, _ in admitted if k == kind]
        out[f"scale_{kind}_requests"] = len(samples)
        if samples:
            out[f"scale_{kind}_p50_ms"] = statistics.median(samples) * 1e3
            out[f"scale_{kind}_p99_ms"] = percentile(samples, 0.99) * 1e3
    # Queue-wait breakdown and shed reasons straight from the door's
    # own instruments — the same numbers /stats exports in production.
    waits = service.metrics.get("aio_queue_wait_seconds")
    for labels, hist in waits.series():
        out[f"scale_queue_wait_{labels[0]}_mean_ms"] = hist.mean * 1e3
        out[f"scale_queue_wait_{labels[0]}_count"] = hist.count
    sheds = service.metrics.get("aio_sheds_total")
    out["scale_sheds_by_reason"] = {
        labels[0]: counter.value for labels, counter in sheds.series()
    }
    return out


def check_floor(report: dict[str, object], profile: str) -> list[str]:
    """Gate ``report`` against one profile's floor section.

    Within a section, plain keys are minimums; ``_max``-suffixed keys
    are ceilings.
    """
    floor = json.loads(FLOOR_PATH.read_text())[profile]
    failures = []
    for key, bound in floor.items():
        if key.endswith("_max"):
            got = float(report[key[: -len("_max")]])  # type: ignore[arg-type]
            if got > bound:
                failures.append(f"{key[:-4]}: {got:.3f} > ceiling {bound}")
        else:
            got = float(report[key])  # type: ignore[arg-type]
            if got < bound:
                failures.append(f"{key}: {got:.3f} < floor {bound}")
    return failures


def parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--profile",
        choices=("default", "scale"),
        default="default",
        help="default: mediator-level open loop; scale: the asyncio "
        "front door under thousands of keep-alive clients",
    )
    parser.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        help="open-loop arrival rate in requests/second "
        f"(default {ARRIVAL_RATE:g} / {SCALE_ARRIVAL_RATE:g} by profile)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=REQUESTS,
        help="request count of the default profile "
        f"(default {REQUESTS})",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=SCALE_CLIENTS,
        help="concurrent keep-alive clients of the scale profile "
        f"(default {SCALE_CLIENTS})",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=SCALE_DURATION_S,
        help="run length in seconds of the scale profile "
        f"(default {SCALE_DURATION_S:g})",
    )
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    if args.profile == "scale":
        arrival = (
            SCALE_ARRIVAL_RATE
            if args.arrival_rate is None
            else args.arrival_rate
        )
        report = run_scale(args.clients, arrival, args.duration)
        summary_keys = (
            "scale_requests",
            "scale_shed_rate",
            "scale_admitted_error_rate",
            "scale_light_p99_ms",
            "scale_query_p99_ms",
        )
    else:
        arrival = ARRIVAL_RATE if args.arrival_rate is None else args.arrival_rate
        report = run(arrival, args.requests)
        summary_keys = (
            "error_rate",
            "threshold_p50_ms",
            "threshold_p99_ms",
            "topk_p99_ms",
            "pdf_p99_ms",
            "profiler_overhead_ratio",
        )
    target_sheet = json.loads(FLOOR_PATH.read_text())[args.profile]
    report[f"target_sheet_{args.profile}"] = target_sheet
    report["generated_unix"] = unix_now()
    report["schema_version"] = SCHEMA_VERSION

    # The two profiles share one artifact: merge over whatever the
    # other profile already wrote, when its schema still matches.
    merged: dict[str, object] = {"benchmark": "slo"}
    if OUT_PATH.exists():
        previous = json.loads(OUT_PATH.read_text())
        if previous.get("schema_version") == SCHEMA_VERSION:
            merged.update(previous)
    merged.update(report)
    profiles = sorted(
        set(merged.get("profiles", []))  # type: ignore[arg-type]
        | {args.profile}
    )
    merged["profiles"] = profiles
    OUT_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")

    summary = {
        key: round(float(report[key]), 3)  # type: ignore[arg-type]
        for key in summary_keys
        if key in report
    }
    sys.stderr.write(
        f"bench_slo[{args.profile}]: {summary} -> {OUT_PATH}\n"
    )
    if args.profile == "default":
        sys.stderr.write(
            f"bench_slo: traces -> {TRACE_PATH}, profile -> {PROFILE_PATH}\n"
        )
    failures = check_floor(merged, args.profile)
    if failures:
        sys.stderr.write("FLOOR VIOLATIONS: " + "; ".join(failures) + "\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
