"""Ablation: snapshot isolation vs table locking for the cache tables.

"Snapshot isolation allows us to avoid locking the tables that serve as
the cache ... provides for a higher degree of parallelism and avoids any
potential deadlocks" (paper §4).  Under snapshot isolation a reader hits
the cache *while* a refresh transaction is rewriting the same entry; a
lock-based design would stall the reader for the refresh's full
evaluation time.  The refresh itself detects the write-write conflict
(first-updater-wins) instead of deadlocking.
"""

import numpy as np
import pytest

from repro.core import ThresholdQuery
from repro.core.cache import SemanticCache
from repro.grid import Box
from repro.harness.common import ExperimentReport, threshold_levels
from repro.morton import encode_array
from repro.storage import SerializationConflictError


@pytest.fixture(scope="module")
def report(config, save_report):
    dataset, mediator = config.make_cluster()
    levels = threshold_levels(dataset, "vorticity", 0)
    query = ThresholdQuery("mhd", "vorticity", 0, levels["medium"])

    # Populate the cache, then measure (a) an uncontended hit, (b) a hit
    # racing an open refresh transaction on the same node.
    mediator.drop_page_caches()
    miss = mediator.threshold(query, processes=config.processes)
    mediator.drop_page_caches()
    uncontended = mediator.threshold(query, processes=config.processes)
    assert uncontended.cache_hits == len(mediator.nodes)

    # Open a refresh on node 0's entry and leave it uncommitted.
    node = mediator.nodes[0]
    cache = mediator.caches[0]
    box = mediator.partitioner.query_boxes(0, Box.cube(dataset.spec.side))[0]
    writer = node.db.begin()
    z = encode_array(
        np.array([box.lo[0]]), np.array([box.lo[1]]), np.array([box.lo[2]])
    )
    entry = cache.lookup(
        writer, "mhd", "vorticity", 0, box, levels["low"]
    )
    cache.store(
        writer, "mhd", "vorticity", 0, box, levels["low"],
        z, np.array([99.0]), replace_ordinal=entry.stale_ordinal,
    )

    # The concurrent reader still hits the (old) committed entry.
    mediator.drop_page_caches()
    contended = mediator.threshold(query, processes=config.processes)
    assert contended.cache_hits == len(mediator.nodes)
    writer.abort()

    lock_based_estimate = miss.elapsed + uncontended.elapsed
    rows = [
        ["cache hit, no concurrent writer", f"{uncontended.elapsed:.2f}"],
        ["cache hit during a concurrent refresh (snapshot isolation)",
         f"{contended.elapsed:.2f}"],
        ["same, under table locking (reader waits out the refresh)",
         f"{lock_based_estimate:.2f}"],
    ]
    out = ExperimentReport(
        title="Ablation -- cache-table isolation (simulated seconds)",
        headers=["scenario", "reader latency"],
        rows=rows,
        notes=[
            "under locking the reader blocks for the refresh's full "
            "raw-data evaluation; under snapshot isolation it reads the "
            "previous committed entry immediately",
        ],
    )
    save_report("ablation_isolation", out)
    return out


def test_snapshot_isolation_reader_never_blocks(report):
    uncontended = float(report.rows[0][1])
    contended = float(report.rows[1][1])
    assert contended <= uncontended * 1.1


def test_locking_would_be_orders_slower(report):
    contended = float(report.rows[1][1])
    locked = float(report.rows[2][1])
    assert locked / contended > 10


def test_benchmark_contended_hit(report, benchmark, config, shared_cluster):
    """Time a cache hit while a refresh of the same entry is in flight."""
    dataset, mediator = shared_cluster
    levels = threshold_levels(dataset, "vorticity", 1)
    query = ThresholdQuery("mhd", "vorticity", 1, levels["medium"])
    mediator.threshold(query, processes=config.processes)  # warm

    node = mediator.nodes[0]
    cache = mediator.caches[0]
    box = mediator.partitioner.query_boxes(0, Box.cube(dataset.spec.side))[0]
    writer = node.db.begin()
    probe = cache.lookup(writer, "mhd", "vorticity", 1, box, levels["low"])
    z = encode_array(
        np.array([box.lo[0]]), np.array([box.lo[1]]), np.array([box.lo[2]])
    )
    cache.store(
        writer, "mhd", "vorticity", 1, box, levels["low"],
        z, np.array([99.0]), replace_ordinal=probe.stale_ordinal,
    )
    try:
        result = benchmark(mediator.threshold, query, config.processes)
        assert result.cache_hits == len(mediator.nodes)
    finally:
        writer.abort()


def test_conflicting_refreshes_fail_fast_not_deadlock(config):
    """Two concurrent refreshes of one stale entry: first-updater-wins."""
    dataset, mediator = config.make_cluster()
    node = mediator.nodes[0]
    cache = mediator.caches[0]
    box = mediator.partitioner.query_boxes(0, Box.cube(dataset.spec.side))[0]
    z = encode_array(np.array([0]), np.array([0]), np.array([0]))

    with node.db.transaction() as setup:
        stale = cache.store(
            setup, "mhd", "vorticity", 3, box, 5.0, z, np.array([6.0])
        )

    first = node.db.begin()
    cache.store(
        first, "mhd", "vorticity", 3, box, 1.0, z, np.array([6.0]),
        replace_ordinal=stale,
    )
    second = node.db.begin()
    with pytest.raises(SerializationConflictError):
        # Both refreshes replace the same stale cacheInfo row; the second
        # deleter collides with the first's uncommitted delete instead of
        # deadlocking.
        cache.store(
            second, "mhd", "vorticity", 3, box, 1.0, z, np.array([6.0]),
            replace_ordinal=stale,
        )
    first.commit()
    second.abort()
