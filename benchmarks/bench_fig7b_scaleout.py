"""Benchmark + reproduction of Fig. 7(b): scale-out with node count."""

import pytest

from repro.core import ThresholdQuery
from repro.harness import fig7
from repro.harness.common import ExperimentConfig, threshold_levels


@pytest.fixture(scope="module")
def report(config, save_report):
    out = fig7.run_scaleout(config)
    save_report("fig7b_scaleout", out)
    return out


def test_scaleout_nearly_linear(report):
    """Paper: nearly perfect linear speedup out to 8 nodes."""
    for column in (1, 2, 3):
        speedups = [float(row[column].rstrip("x")) for row in report.rows]
        for nodes, speedup in zip((1, 2, 4, 8), speedups):
            assert speedup >= 0.85 * nodes
            assert speedup <= 1.1 * nodes


def test_benchmark_eight_node_query(report, benchmark, config):
    dataset, mediator = config.make_cluster(nodes=8)
    threshold = threshold_levels(dataset, "vorticity", 0)["medium"]
    query = ThresholdQuery("mhd", "vorticity", 0, threshold)

    def run():
        mediator.drop_cache_entries("mhd", "vorticity", 0)
        mediator.drop_page_caches()
        return mediator.threshold(query, processes=1, use_cache=False)

    result = benchmark(run)
    assert len(result) > 0
