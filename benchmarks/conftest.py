"""Shared benchmark fixtures: experiment config, cluster, report sink.

Every ``bench_*`` module reproduces one table or figure of the paper:
the module-scoped fixture runs the experiment harness, writes the
resulting table to ``benchmarks/results/<name>.txt`` (and echoes it to
the terminal), and the pytest-benchmark functions time the underlying
queries of that experiment.
"""

import pathlib

import pytest

from repro.harness.common import ExperimentConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig()


@pytest.fixture(scope="session")
def shared_cluster(config):
    """One default cluster shared by experiments that can reuse it."""
    return config.make_cluster()


@pytest.fixture(scope="session")
def save_report():
    """Write an ExperimentReport to results/<name>.txt and echo it."""

    def _save(name: str, report) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = str(report)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
