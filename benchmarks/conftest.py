"""Shared benchmark fixtures: experiment config, cluster, report sink.

Every ``bench_*`` module reproduces one table or figure of the paper:
the module-scoped fixture runs the experiment harness, writes the
resulting table to ``benchmarks/results/<name>.txt`` (and echoes it to
the terminal), and the pytest-benchmark functions time the underlying
queries of that experiment.

At session end, each benchmarked module additionally gets a machine-
readable ``BENCH_<module>.json`` at the repo root: the wall-clock
timing statistics of its benchmark functions plus the key engine
metrics of the run (semantic-cache hit rate, simulated I/O bytes),
sampled from the shared cluster's metrics registry.  CI uploads these
as artifacts so perf history survives the run.
"""

import json
import pathlib

import pytest

from repro.harness.common import ExperimentConfig
from repro.obs import report
from repro.obs.clock import unix_now

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: Version of the per-module report layout; bump when keys are added,
#: renamed or removed so dashboards can detect schema changes instead
#: of silently mis-parsing.
SCHEMA_VERSION = 2

#: Mediators whose metrics are sampled into the BENCH_*.json files.
_OBSERVED_MEDIATORS = []


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig()


@pytest.fixture(scope="session")
def shared_cluster(config):
    """One default cluster shared by experiments that can reuse it."""
    dataset, mediator = config.make_cluster()
    _OBSERVED_MEDIATORS.append(mediator)
    return dataset, mediator


@pytest.fixture(scope="session")
def save_report():
    """Write an ExperimentReport to results/<name>.txt and echo it."""

    def _save(name: str, experiment_report) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = str(experiment_report)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        report(f"\n{text}\n")

    return _save


def _engine_metrics() -> dict:
    """Key engine counters summed over the session's observed clusters."""
    hits = misses = io_bytes = sim_seconds = 0.0
    for mediator in _OBSERVED_MEDIATORS:
        metrics = mediator.metrics
        hits += metrics.get("semantic_cache_hits_total").value
        misses += metrics.get("semantic_cache_misses_total").value
        io_bytes += metrics.get("io_bytes_total").value
        family = metrics.get("simulated_seconds_total")
        for _, series in family.series():
            sim_seconds += series.value
    probes = hits + misses
    return {
        "semantic_cache_hits": hits,
        "semantic_cache_misses": misses,
        "semantic_cache_hit_rate": hits / probes if probes else 0.0,
        "io_bytes": io_bytes,
        "simulated_seconds": sim_seconds,
    }


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_<module>.json`` for every benchmarked module."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    by_module: dict[str, list[dict]] = {}
    for bench in bench_session.benchmarks:
        module = pathlib.Path(bench.fullname.split("::")[0]).stem
        stats = bench.stats
        by_module.setdefault(module, []).append(
            {
                "test": bench.name,
                "rounds": stats.rounds,
                "mean_seconds": stats.mean,
                "min_seconds": stats.min,
                "max_seconds": stats.max,
                "stddev_seconds": stats.stddev,
            }
        )
    metrics = _engine_metrics() if _OBSERVED_MEDIATORS else {}
    for module, timings in sorted(by_module.items()):
        payload = {
            "module": module,
            "schema_version": SCHEMA_VERSION,
            "written_at_unix": unix_now(),
            "timings": timings,
            "metrics": metrics,
        }
        path = REPO_ROOT / f"BENCH_{module}.json"
        # sort_keys keeps re-runs byte-stable apart from real changes,
        # so BENCH_*.json diffs in review show only moved numbers.
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        report(f"wrote {path}")
