"""Network data-plane benchmark: throughput, latency, and TCP overhead.

Stands up a real two-node cluster in-thread (NodeServer instances over
loopback TCP) plus an identical in-process reference, and measures:

* ``ping_rtt_ms`` — median health-check round trip, the wire floor;
* a **payload sweep** — 64 KiB / 1 MiB / 16 MiB point-set transfers via
  the server's ``echo`` RPC, compressed (negotiated zlib, the default)
  and uncompressed, recording MiB/s plus p50/p90 latency.  Throughput
  is *raw* point-set bytes over wall time, so the compressed rows show
  what negotiation buys on top of the zero-copy framing;
* ``threshold_tcp_s`` / ``threshold_inprocess_s`` — a threshold query
  over each transport, and the resulting ``tcp_overhead_ratio``;
* per-query ``wire_bytes`` — the real (post-compression) footprint the
  TcpTransport reconciles against the cost model's MEDIATOR_DB
  transfer.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_net.py

Writes ``BENCH_net.json`` at the repo root and gates the results
against ``benchmarks/net_floor.json`` (plain keys are minimums; keys
with a ``_max`` suffix are ceilings), exiting non-zero on a violation —
the CI net-cluster job relies on that exit code.
"""

from __future__ import annotations

import json
import statistics
import sys
from pathlib import Path

import numpy as np

from repro.cluster.mediator import Mediator, build_cluster
from repro.cluster.partition import MortonPartitioner
from repro.core import ThresholdQuery
from repro.net.compress import NO_COMPRESSION
from repro.net.server import ClusterConfig, NodeServer
from repro.net.stream import ByteStreamSink
from repro.net.transport import TcpTransport
from repro.obs.clock import Stopwatch, unix_now
from repro.simulation.datasets import mhd_dataset

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_net.json"
FLOOR_PATH = Path(__file__).resolve().parent / "net_floor.json"

SIDE = 16
TIMESTEPS = 2
NODES = 2
PINGS = 50
#: Alternating TCP/in-process threshold reps; the ratio uses medians.
THRESHOLD_REPS = 5
#: Payload sweep sizes (raw packed point-set bytes; 16 bytes/point).
SWEEP_SIZES = (
    (64 * 1024, "64KiB"),
    (1024 * 1024, "1MiB"),
    (16 * 1024 * 1024, "16MiB"),
)
QUERY = ThresholdQuery(
    dataset="mhd", field="vorticity", timestep=0, threshold=0.5
)


def start_cluster() -> tuple[list[NodeServer], list[str]]:
    """Two in-thread node servers over loopback, data loaded."""
    config = ClusterConfig(
        dataset="mhd", side=SIDE, timesteps=TIMESTEPS, seed=11, nodes=NODES
    )
    servers = [NodeServer(i, config) for i in range(NODES)]
    addresses = [f"127.0.0.1:{s.port}" for s in servers]
    for server in servers:
        server.connect_peers(addresses)
        server.load()
        server.start()
    return servers, addresses


def make_mediator(addresses: list[str], **transport_kwargs) -> Mediator:
    """A TCP mediator over the running servers."""
    return Mediator(
        nodes=[],
        partitioner=MortonPartitioner(SIDE, NODES),
        transport=TcpTransport(addresses, timeout=300.0, **transport_kwargs),
        scatter_timeout=600.0,
    )


def bench_ping(mediator: Mediator) -> dict[str, float]:
    rtts = []
    for _ in range(PINGS):
        for node_id in range(NODES):
            rtts.append(mediator.transport.ping(node_id))
    return {
        "ping_rtt_ms_median": statistics.median(rtts) * 1e3,
        "ping_rtt_ms_p90": sorted(rtts)[int(len(rtts) * 0.9)] * 1e3,
    }


def _echo_once(transport: TcpTransport, points: int, raw_bytes: int) -> float:
    """One timed echo transfer; verifies every raw byte arrived."""
    sink = ByteStreamSink()
    with Stopwatch() as watch:
        call = transport._call(
            0, "echo", {"points": points}, sink=sink, timeout=300.0
        )
    received = sink.raw_bytes + sum(len(blob) for blob in call.blobs)
    if received != raw_bytes:
        raise AssertionError(
            f"echo returned {received} raw bytes, expected {raw_bytes}"
        )
    return watch.elapsed


def bench_payload_sweep(
    compressed: TcpTransport, raw: TcpTransport
) -> dict[str, float]:
    """MiB/s and p50/p90 latency per payload size, per codec."""
    out: dict[str, float] = {}
    for raw_bytes, label in SWEEP_SIZES:
        points = raw_bytes // 16
        reps = 5 if raw_bytes >= 16 * 1024 * 1024 else 9
        for codec_name, transport in (("zlib", compressed), ("raw", raw)):
            _echo_once(transport, points, raw_bytes)  # warm the path
            times = sorted(
                _echo_once(transport, points, raw_bytes)
                for _ in range(reps)
            )
            p50 = statistics.median(times)
            p90 = times[min(int(len(times) * 0.9), len(times) - 1)]
            prefix = f"echo_{label}_{codec_name}"
            out[f"{prefix}_mib_per_s"] = raw_bytes / p50 / (1024 * 1024)
            out[f"{prefix}_p50_ms"] = p50 * 1e3
            out[f"{prefix}_p90_ms"] = p90 * 1e3
    # Headline: the 16 MiB transfer on the default (negotiated) path.
    out["pointset_mib_per_s"] = out["echo_16MiB_zlib_mib_per_s"]
    out["pointset_raw_mib_per_s"] = out["echo_16MiB_raw_mib_per_s"]
    return out


def bench_threshold(tcp: Mediator, in_process: Mediator) -> dict[str, float]:
    # Warm both paths once so buffer-pool state matches.
    tcp.threshold(QUERY, use_cache=False)
    in_process.threshold(QUERY, use_cache=False)

    tcp_times, local_times = [], []
    wire_bytes = 0.0
    for _ in range(THRESHOLD_REPS):
        with Stopwatch() as tcp_watch:
            over_tcp = tcp.threshold(QUERY, use_cache=False)
        with Stopwatch() as local_watch:
            local = in_process.threshold(QUERY, use_cache=False)
        tcp_times.append(tcp_watch.elapsed)
        local_times.append(local_watch.elapsed)
        wire_bytes = float(over_tcp.ledger.meters().get("wire_bytes", 0.0))
        assert np.array_equal(
            np.sort(over_tcp.zindexes), np.sort(local.zindexes)
        )
    tcp_s = statistics.median(tcp_times)
    local_s = statistics.median(local_times)
    return {
        "threshold_points": float(len(over_tcp)),
        "threshold_tcp_s": tcp_s,
        "threshold_inprocess_s": local_s,
        "tcp_overhead_ratio": tcp_s / local_s,
        "threshold_wire_bytes": wire_bytes,
    }


def run() -> dict[str, object]:
    servers, addresses = start_cluster()
    tcp = make_mediator(addresses)
    raw_tcp = make_mediator(addresses, compression=NO_COMPRESSION)
    in_process = build_cluster(
        mhd_dataset(side=SIDE, timesteps=TIMESTEPS, seed=11), nodes=NODES
    )
    try:
        report: dict[str, object] = {
            "benchmark": "net",
            "generated_unix": unix_now(),
            "side": SIDE,
            "nodes": NODES,
        }
        report.update(bench_ping(tcp))
        report.update(
            bench_payload_sweep(tcp.transport, raw_tcp.transport)
        )
        report.update(bench_threshold(tcp, in_process))
        return report
    finally:
        tcp.close()
        raw_tcp.close()
        in_process.close()
        for server in servers:
            server.shutdown()


def check_floor(report: dict[str, object]) -> list[str]:
    """Compare the report against the floor file.

    Plain keys are minimums; a ``_max`` suffix marks a ceiling (used
    for ratios where smaller is better).
    """
    floor = json.loads(FLOOR_PATH.read_text())
    failures = []
    for key, bound in floor.items():
        if key.endswith("_max"):
            got = float(report[key[: -len("_max")]])  # type: ignore[arg-type]
            if got > bound:
                failures.append(f"{key[:-4]}: {got:.3f} > ceiling {bound}")
        else:
            got = float(report[key])  # type: ignore[arg-type]
            if got < bound:
                failures.append(f"{key}: {got:.3f} < floor {bound}")
    return failures


def main() -> int:
    report = run()
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    summary = {
        key: round(float(report[key]), 3)  # type: ignore[arg-type]
        for key in (
            "ping_rtt_ms_median",
            "pointset_mib_per_s",
            "pointset_raw_mib_per_s",
            "threshold_tcp_s",
            "threshold_inprocess_s",
            "tcp_overhead_ratio",
        )
    }
    sys.stderr.write(f"bench_net: {summary} -> {OUT_PATH}\n")
    failures = check_floor(report)
    if failures:
        sys.stderr.write("FLOOR VIOLATIONS: " + "; ".join(failures) + "\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
