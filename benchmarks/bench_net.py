"""Network transport benchmark: RPC latency, throughput, and TCP overhead.

Stands up a real two-node cluster in-thread (NodeServer instances over
loopback TCP) plus an identical in-process reference, and measures:

* ``ping_rtt_ms`` — median health-check round trip, the wire floor;
* ``threshold_tcp_s`` / ``threshold_inprocess_s`` — one threshold query
  over each transport, and the resulting overhead ratio;
* ``pointset_mib_per_s`` — wire throughput shipping a large threshold
  result's pointset columns (real bytes / wall seconds);
* per-query ``wire_bytes`` — the real wire footprint the TcpTransport
  reconciles against the cost model's MEDIATOR_DB transfer.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_net.py

Writes ``BENCH_net.json`` at the repo root.  Numbers are informational
(no floor): loopback latency varies wildly across CI hosts.
"""

from __future__ import annotations

import json
import statistics
import sys
from pathlib import Path

import numpy as np

from repro.cluster.mediator import Mediator, build_cluster
from repro.cluster.partition import MortonPartitioner
from repro.core import ThresholdQuery
from repro.net.server import ClusterConfig, NodeServer
from repro.net.transport import TcpTransport
from repro.obs.clock import Stopwatch, unix_now
from repro.simulation.datasets import mhd_dataset

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_net.json"

SIDE = 16
TIMESTEPS = 2
NODES = 2
PINGS = 50
QUERY = ThresholdQuery(
    dataset="mhd", field="vorticity", timestep=0, threshold=0.5
)


def start_cluster() -> tuple[list[NodeServer], Mediator]:
    """Two in-thread node servers plus a TCP mediator over them."""
    config = ClusterConfig(
        dataset="mhd", side=SIDE, timesteps=TIMESTEPS, seed=11, nodes=NODES
    )
    servers = [NodeServer(i, config) for i in range(NODES)]
    addresses = [f"127.0.0.1:{s.port}" for s in servers]
    for server in servers:
        server.connect_peers(addresses)
        server.load()
        server.start()
    mediator = Mediator(
        nodes=[],
        partitioner=MortonPartitioner(SIDE, NODES),
        transport=TcpTransport(addresses, timeout=120.0),
        scatter_timeout=300.0,
    )
    return servers, mediator


def bench_ping(mediator: Mediator) -> dict[str, float]:
    rtts = []
    for _ in range(PINGS):
        for node_id in range(NODES):
            rtts.append(mediator.transport.ping(node_id))
    return {
        "ping_rtt_ms_median": statistics.median(rtts) * 1e3,
        "ping_rtt_ms_p90": sorted(rtts)[int(len(rtts) * 0.9)] * 1e3,
    }


def bench_threshold(tcp: Mediator, in_process: Mediator) -> dict[str, float]:
    # Warm both paths once so buffer-pool state matches.
    tcp.threshold(QUERY, use_cache=False)
    in_process.threshold(QUERY, use_cache=False)

    with Stopwatch() as tcp_watch:
        over_tcp = tcp.threshold(QUERY, use_cache=False)
    with Stopwatch() as local_watch:
        local = in_process.threshold(QUERY, use_cache=False)
    assert np.array_equal(
        np.sort(over_tcp.zindexes), np.sort(local.zindexes)
    )
    wire_bytes = float(over_tcp.ledger.meters().get("wire_bytes", 0.0))
    return {
        "threshold_points": float(len(over_tcp)),
        "threshold_tcp_s": tcp_watch.elapsed,
        "threshold_inprocess_s": local_watch.elapsed,
        "tcp_overhead_ratio": tcp_watch.elapsed / local_watch.elapsed,
        "threshold_wire_bytes": wire_bytes,
        "pointset_mib_per_s": (
            wire_bytes / tcp_watch.elapsed / (1024 * 1024)
        ),
    }


def run() -> dict[str, object]:
    servers, tcp = start_cluster()
    in_process = build_cluster(
        mhd_dataset(side=SIDE, timesteps=TIMESTEPS, seed=11), nodes=NODES
    )
    try:
        report: dict[str, object] = {
            "benchmark": "net",
            "generated_unix": unix_now(),
            "side": SIDE,
            "nodes": NODES,
        }
        report.update(bench_ping(tcp))
        report.update(bench_threshold(tcp, in_process))
        return report
    finally:
        tcp.close()
        in_process.close()
        for server in servers:
            server.shutdown()


def main() -> int:
    report = run()
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    summary = {
        key: round(float(report[key]), 3)  # type: ignore[arg-type]
        for key in (
            "ping_rtt_ms_median",
            "threshold_tcp_s",
            "threshold_inprocess_s",
            "tcp_overhead_ratio",
            "pointset_mib_per_s",
        )
    }
    sys.stderr.write(f"bench_net: {summary} -> {OUT_PATH}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
