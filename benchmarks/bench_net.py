"""Network data-plane benchmark: throughput, latency, and TCP overhead.

Stands up a real two-node cluster in-thread (NodeServer instances over
loopback TCP) plus an identical in-process reference, and measures:

* ``ping_rtt_ms`` — median health-check round trip, the wire floor;
* a **payload sweep** — 64 KiB / 1 MiB / 16 MiB point-set transfers via
  the server's ``echo`` RPC, one leg per data-plane configuration:
  ``raw`` (no codec), ``zlib`` (plain zlib, the PR-5 baseline),
  ``shuffle`` (byte-shuffle + zlib) and ``shm`` (same-host
  shared-memory ring, no codec) — recording MiB/s plus p50/p90
  latency.  Throughput is *raw* point-set bytes over wall time, so the
  codec rows show what each transform buys on top of the zero-copy
  framing, and the two headline ratios (``shm_speedup_vs_raw``,
  ``shuffle_speedup_vs_zlib``) are gated in the floor file;
* ``threshold_tcp_s`` / ``threshold_inprocess_s`` — a threshold query
  over each transport, and the resulting ``tcp_overhead_ratio``;
* per-query ``wire_bytes`` — the real (post-compression) footprint the
  TcpTransport reconciles against the cost model's MEDIATOR_DB
  transfer.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_net.py [--transport tcp|shm]

``--transport`` picks the connection flavour for the threshold-equality
leg (the payload sweep always runs every leg): ``shm`` routes streamed
partials through the shared-memory ring and writes
``BENCH_net_shm.json`` instead of ``BENCH_net.json``.  Results are
gated against ``benchmarks/net_floor.json`` (plain keys are minimums;
keys with a ``_max`` suffix are ceilings), exiting non-zero on a
violation — the CI net-cluster job relies on that exit code.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

import numpy as np

from repro.cluster.mediator import Mediator, build_cluster
from repro.cluster.partition import MortonPartitioner
from repro.core import ThresholdQuery
from repro.net.compress import CompressionConfig, NO_COMPRESSION
from repro.net.server import ClusterConfig, NodeServer
from repro.net.stream import ByteStreamSink
from repro.net.transport import TcpTransport
from repro.obs.clock import Stopwatch, unix_now
from repro.simulation.datasets import mhd_dataset

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_net.json"
SHM_OUT_PATH = REPO_ROOT / "BENCH_net_shm.json"
FLOOR_PATH = Path(__file__).resolve().parent / "net_floor.json"

#: Version of the report's key set; bump when keys are added, renamed
#: or removed so downstream dashboards can detect layout changes.
SCHEMA_VERSION = 2

SIDE = 16
TIMESTEPS = 2
NODES = 2
PINGS = 50
#: Alternating TCP/in-process threshold reps; the ratio uses medians.
THRESHOLD_REPS = 5
#: Payload sweep sizes (raw packed point-set bytes; 16 bytes/point).
SWEEP_SIZES = (
    (64 * 1024, "64KiB"),
    (1024 * 1024, "1MiB"),
    (16 * 1024 * 1024, "16MiB"),
)
QUERY = ThresholdQuery(
    dataset="mhd", field="vorticity", timestep=0, threshold=0.5
)


def start_cluster() -> tuple[list[NodeServer], list[str]]:
    """Two in-thread node servers over loopback, data loaded."""
    config = ClusterConfig(
        dataset="mhd", side=SIDE, timesteps=TIMESTEPS, seed=11, nodes=NODES
    )
    servers = [NodeServer(i, config) for i in range(NODES)]
    addresses = [f"127.0.0.1:{s.port}" for s in servers]
    for server in servers:
        server.connect_peers(addresses)
        server.load()
        server.start()
    return servers, addresses


def make_mediator(addresses: list[str], **transport_kwargs) -> Mediator:
    """A TCP mediator over the running servers."""
    return Mediator(
        nodes=[],
        partitioner=MortonPartitioner(SIDE, NODES),
        transport=TcpTransport(addresses, timeout=300.0, **transport_kwargs),
        scatter_timeout=600.0,
    )


def bench_ping(mediator: Mediator) -> dict[str, float]:
    rtts = []
    for _ in range(PINGS):
        for node_id in range(NODES):
            rtts.append(mediator.transport.ping(node_id))
    return {
        "ping_rtt_ms_median": statistics.median(rtts) * 1e3,
        "ping_rtt_ms_p90": sorted(rtts)[int(len(rtts) * 0.9)] * 1e3,
    }


def _echo_once(transport: TcpTransport, points: int, raw_bytes: int) -> float:
    """One timed echo transfer; verifies every raw byte arrived."""
    sink = ByteStreamSink()
    with Stopwatch() as watch:
        call = transport._call(
            0, "echo", {"points": points}, sink=sink, timeout=300.0
        )
    received = sink.raw_bytes + sum(len(blob) for blob in call.blobs)
    if received != raw_bytes:
        raise AssertionError(
            f"echo returned {received} raw bytes, expected {raw_bytes}"
        )
    return watch.elapsed


def bench_payload_sweep(
    legs: "list[tuple[str, TcpTransport]]",
) -> dict[str, float]:
    """MiB/s and p50/p90 latency per payload size, per data-plane leg.

    Throughput derives from the *minimum* time (the ``timeit``
    convention: on a small box the lowest observation is the least
    scheduler-disturbed estimate of the path's real capability, and the
    gated codec/transport ratios need that stability); p50/p90 stay as
    latency diagnostics, where the jitter itself is the information.
    """
    out: dict[str, float] = {}
    for raw_bytes, label in SWEEP_SIZES:
        points = raw_bytes // 16
        reps = 7 if raw_bytes >= 16 * 1024 * 1024 else 9
        for leg_name, transport in legs:
            _echo_once(transport, points, raw_bytes)  # warm the path
            times = sorted(
                _echo_once(transport, points, raw_bytes)
                for _ in range(reps)
            )
            p50 = statistics.median(times)
            p90 = times[min(int(len(times) * 0.9), len(times) - 1)]
            prefix = f"echo_{label}_{leg_name}"
            out[f"{prefix}_mib_per_s"] = raw_bytes / times[0] / (1024 * 1024)
            out[f"{prefix}_p50_ms"] = p50 * 1e3
            out[f"{prefix}_p90_ms"] = p90 * 1e3
    # Headline: the 16 MiB transfer on the default (negotiated) path,
    # plus the two ratios the floor file gates.
    out["pointset_mib_per_s"] = out["echo_16MiB_zlib_mib_per_s"]
    out["pointset_raw_mib_per_s"] = out["echo_16MiB_raw_mib_per_s"]
    out["shm_speedup_vs_raw"] = (
        out["echo_16MiB_shm_mib_per_s"] / out["echo_16MiB_raw_mib_per_s"]
    )
    out["shuffle_speedup_vs_zlib"] = (
        out["echo_16MiB_shuffle_mib_per_s"] / out["echo_16MiB_zlib_mib_per_s"]
    )
    return out


def bench_threshold(tcp: Mediator, in_process: Mediator) -> dict[str, float]:
    # Warm both paths once so buffer-pool state matches.
    tcp.threshold(QUERY, use_cache=False)
    in_process.threshold(QUERY, use_cache=False)

    tcp_times, local_times = [], []
    wire_bytes = 0.0
    for _ in range(THRESHOLD_REPS):
        with Stopwatch() as tcp_watch:
            over_tcp = tcp.threshold(QUERY, use_cache=False)
        with Stopwatch() as local_watch:
            local = in_process.threshold(QUERY, use_cache=False)
        tcp_times.append(tcp_watch.elapsed)
        local_times.append(local_watch.elapsed)
        wire_bytes = float(over_tcp.ledger.meters().get("wire_bytes", 0.0))
        assert np.array_equal(
            np.sort(over_tcp.zindexes), np.sort(local.zindexes)
        )
    tcp_s = statistics.median(tcp_times)
    local_s = statistics.median(local_times)
    return {
        "threshold_points": float(len(over_tcp)),
        "threshold_tcp_s": tcp_s,
        "threshold_inprocess_s": local_s,
        "tcp_overhead_ratio": tcp_s / local_s,
        "threshold_wire_bytes": wire_bytes,
    }


def run(transport_kind: str = "tcp") -> dict[str, object]:
    servers, addresses = start_cluster()
    tcp = make_mediator(addresses)
    raw_tcp = make_mediator(addresses, compression=NO_COMPRESSION)
    zlib_tcp = make_mediator(
        addresses, compression=CompressionConfig(codecs=("zlib",))
    )
    shuffle_tcp = make_mediator(
        addresses, compression=CompressionConfig(codecs=("shuffle-zlib",))
    )
    shm_tcp = make_mediator(addresses, compression=NO_COMPRESSION, shm=True)
    in_process = build_cluster(
        mhd_dataset(side=SIDE, timesteps=TIMESTEPS, seed=11), nodes=NODES
    )
    threshold_mediator = shm_tcp if transport_kind == "shm" else tcp
    try:
        report: dict[str, object] = {
            "benchmark": "net",
            "schema_version": SCHEMA_VERSION,
            "generated_unix": unix_now(),
            "side": SIDE,
            "nodes": NODES,
            "transport": transport_kind,
        }
        report.update(bench_ping(tcp))
        report.update(
            bench_payload_sweep(
                [
                    ("raw", raw_tcp.transport),
                    ("zlib", zlib_tcp.transport),
                    ("shuffle", shuffle_tcp.transport),
                    ("shm", shm_tcp.transport),
                ]
            )
        )
        report.update(bench_threshold(threshold_mediator, in_process))
        return report
    finally:
        tcp.close()
        raw_tcp.close()
        zlib_tcp.close()
        shuffle_tcp.close()
        shm_tcp.close()
        in_process.close()
        for server in servers:
            server.shutdown()


def check_floor(report: dict[str, object]) -> list[str]:
    """Compare the report against the floor file.

    Plain keys are minimums; a ``_max`` suffix marks a ceiling (used
    for ratios where smaller is better).
    """
    floor = json.loads(FLOOR_PATH.read_text())
    failures = []
    for key, bound in floor.items():
        if key.endswith("_max"):
            got = float(report[key[: -len("_max")]])  # type: ignore[arg-type]
            if got > bound:
                failures.append(f"{key[:-4]}: {got:.3f} > ceiling {bound}")
        else:
            got = float(report[key])  # type: ignore[arg-type]
            if got < bound:
                failures.append(f"{key}: {got:.3f} < floor {bound}")
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--transport",
        choices=("tcp", "shm"),
        default="tcp",
        help="connection flavour for the threshold-equality leg",
    )
    opts = parser.parse_args(argv)
    report = run(opts.transport)
    out_path = SHM_OUT_PATH if opts.transport == "shm" else OUT_PATH
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    summary = {
        key: round(float(report[key]), 3)  # type: ignore[arg-type]
        for key in (
            "ping_rtt_ms_median",
            "pointset_mib_per_s",
            "pointset_raw_mib_per_s",
            "shm_speedup_vs_raw",
            "shuffle_speedup_vs_zlib",
            "threshold_tcp_s",
            "threshold_inprocess_s",
            "tcp_overhead_ratio",
        )
    }
    sys.stderr.write(f"bench_net: {summary} -> {out_path}\n")
    failures = check_floor(report)
    if failures:
        sys.stderr.write("FLOOR VIOLATIONS: " + "; ".join(failures) + "\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
