"""Benchmark + reproduction of Figs. 3-4: intense events and 4-D FoF."""

import numpy as np
import pytest

from repro.analysis import friends_of_friends, norm_rms
from repro.core import ThresholdQuery
from repro.harness import fig3_fig4
from repro.harness.common import ground_truth_norm


@pytest.fixture(scope="module")
def report(config, save_report):
    out = fig3_fig4.run(config)
    save_report("fig3_fig4_clusters", out)
    return out


def test_intense_points_are_a_tiny_fraction(report):
    """Paper Fig. 4: ~0.02% of points above 7 x RMS."""
    for row in report.rows:
        if row[0] == "points above threshold":
            fraction = float(row[3].rstrip("%")) / 100
            assert fraction < 1e-3


def test_some_timestep_has_intense_events(report):
    counts = [
        row[2] for row in report.rows if row[0] == "points above threshold"
    ]
    assert max(counts) > 0


def test_clusters_found_and_one_persists(report):
    cluster_rows = [row for row in report.rows if row[0].startswith("cluster")]
    assert cluster_rows, "no 4-D clusters found"
    spans = [row[1] for row in cluster_rows]
    assert any(span.count(",") >= 1 for span in spans)  # multi-step cluster


def test_benchmark_fof_clustering(report, benchmark, config, shared_cluster):
    dataset, mediator = shared_cluster
    rms = norm_rms(ground_truth_norm(dataset, "vorticity", 0))
    result = mediator.threshold(
        ThresholdQuery("mhd", "vorticity", 0, 5.0 * rms),
        processes=config.processes,
    )
    coords = result.coordinates()

    clusters = benchmark(
        friends_of_friends, coords, result.values, dataset.spec.side, 2, 2
    )
    assert isinstance(clusters, list)
